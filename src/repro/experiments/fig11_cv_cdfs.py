"""Figure 11: cross-validation CDFs of the ML algorithms per model class.

On cluster 4's workload, the paper cross-validates five learners for each
learned-model class and plots estimated/actual CDFs: all learners beat the
default model, specialized classes are near-ideal for most algorithms, and
accuracy degrades toward the operator model.
"""

from __future__ import annotations

from repro.common.stats import Cdf, error_ratio, median_error_pct, pearson
from repro.core.config import ModelKind
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.experiments.tab4_subgraph_models import (
    cross_validate_subgraph_models,
    model_factories,
)

PAPER = {
    "shape": (
        "all ML algorithms beat default for every model class; accuracy "
        "degrades from op-subgraph to op-input to operator"
    )
}

_KINDS = (
    ModelKind.OP_SUBGRAPH,
    ModelKind.OP_INPUT,
    ModelKind.OPERATOR,
)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster4", scale=scale, seed=seed)
    rows = []
    series: dict[str, list] = {"cdf_grid": list(Cdf.of([1.0]).grid)}

    costs, actuals = bundle.baseline_costs(DefaultCostModel(), days=tuple(bundle.log.days))
    series["cdf_default"] = list(Cdf.of(error_ratio(costs, actuals)).fractions)
    rows.append(
        {
            "model_class": "-",
            "algorithm": "Default",
            "correlation": round(pearson(costs, actuals), 3),
            "median_error_pct": round(median_error_pct(costs, actuals), 1),
        }
    )

    for kind in _KINDS:
        for name, factory in model_factories(seed).items():
            preds, acts = cross_validate_subgraph_models(
                bundle.log, factory, kind=kind, seed=seed, max_templates=40
            )
            if len(preds) == 0:
                continue
            rows.append(
                {
                    "model_class": kind.value,
                    "algorithm": name,
                    "correlation": round(pearson(preds, acts), 3),
                    "median_error_pct": round(median_error_pct(preds, acts), 1),
                }
            )
            series[f"cdf_{kind.value}_{name}"] = list(
                Cdf.of(error_ratio(preds, acts)).fractions
            )
    return ExperimentResult(
        experiment_id="fig11",
        title="Cross-validation of ML algorithms per learned-model class (cluster 4)",
        rows=rows,
        series=series,
        paper=PAPER,
        notes="Operator-subgraphApprox omitted (paper: similar to operator-input).",
    )
