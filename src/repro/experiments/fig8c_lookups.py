"""Figure 8(c): cost-model lookups for partition exploration strategies.

The paper counts model invocations as plan size grows: exhaustive probing
explodes, geometric sampling costs ``5 * m * log_{(s+1)/s}(Pmax)`` lookups,
and the analytical approach caps at ``5 * m`` (200 for a 40-operator plan).
We report both the closed-form counts and measured lookups from the
instrumented predictor.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.optimizer.partition import expected_lookups

PAPER = {
    "analytical_max_lookups_40_ops": 200,
    "sampling_lookups": "several thousands depending on skip coefficient",
}


def run(scale: str = "small", seed: int = 0, max_partitions: int = 3000) -> ExperimentResult:
    operator_counts = list(range(1, 41))
    strategies = [
        ("exhaustive", {}),
        ("sampling-geometric", {"skip_coefficient": 0.5}),
        ("sampling-geometric", {"skip_coefficient": 5.0}),
        ("analytical", {}),
    ]
    series: dict[str, list] = {"n_operators": operator_counts}
    rows = []
    for name, kwargs in strategies:
        label = name + (f"(s={kwargs['skip_coefficient']:g})" if kwargs else "")
        counts = [
            expected_lookups(m, name, max_partitions=max_partitions, **kwargs)
            for m in operator_counts
        ]
        series[f"lookups_{label}"] = counts
        rows.append(
            {
                "strategy": label,
                "lookups_1_op": counts[0],
                "lookups_10_ops": counts[9],
                "lookups_40_ops": counts[-1],
            }
        )
    return ExperimentResult(
        experiment_id="fig8c",
        title="Model lookups for partition exploration vs plan size",
        rows=rows,
        series=series,
        paper=PAPER,
        notes="Analytical stays at 5 lookups/operator; exhaustive scales with Pmax.",
    )
