"""Figure 8(c): cost-model lookups for partition exploration strategies.

The paper counts model invocations as plan size grows: exhaustive probing
explodes, geometric sampling costs ``5 * m * log_{(s+1)/s}(Pmax)`` lookups,
and the analytical approach caps at ``5 * m`` (200 for a 40-operator plan).
We report both the closed-form counts and measured lookups from the
instrumented predictor: a small trained Cleo drives each strategy over a
real plan's explorable stages (through a cache-disabled serving facade, so
every prediction is charged) and the predictor's ``lookup_count`` delta is
recorded alongside the analytical numbers.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.optimizer.partition import (
    AnalyticalStrategy,
    ExhaustiveStrategy,
    SamplingStrategy,
    _stage_is_fixed,
    expected_lookups,
)
from repro.plan.stages import build_stage_graph

PAPER = {
    "analytical_max_lookups_40_ops": 200,
    "sampling_lookups": "several thousands depending on skip coefficient",
}

#: Pmax used for the *measured* section (exhaustive probes every count, so
#: the measurement keeps a small budget; closed-form counts use the paper's
#: 3000 for the figure itself).
MEASURED_MAX_PARTITIONS = 32


def _strategy_for(name: str, kwargs: dict) -> object:
    if name == "exhaustive":
        return ExhaustiveStrategy()
    if name == "sampling-geometric":
        return SamplingStrategy(scheme="geometric", **kwargs)
    if name == "analytical":
        return AnalyticalStrategy()
    raise ValueError(f"unknown strategy {name!r}")


def _measure_lookups(bundle, strategy) -> tuple[int, int, int]:
    """Drive one strategy over the largest test plan's explorable stages.

    Returns ``(measured lookups, total plan operators, explored operators)``
    — the ``lookup_count`` delta of the instrumented predictor while the
    strategy chooses a count for every non-fixed stage.
    """
    from repro.core.cost_model import CleoCostModel

    predictor = bundle.predictor()
    jobs = list(bundle.test_log())
    job = max(jobs, key=lambda j: len(j.operators))
    plan = bundle.runner.plans[job.job_id]
    # Cache-disabled service: exact per-prediction lookup accounting.
    model = CleoCostModel(predictor)
    estimator = bundle.fresh_estimator()
    graph = build_stage_graph(plan)
    explored_ops = 0
    before = predictor.lookup_count
    for stage in graph.topological_order():
        if _stage_is_fixed(stage):
            continue
        estimator.reset()
        strategy.choose(
            stage.operators, model, estimator, MEASURED_MAX_PARTITIONS
        )
        explored_ops += len(stage.operators)
    measured = predictor.lookup_count - before
    return measured, len(job.operators), explored_ops


def run(scale: str = "small", seed: int = 0, max_partitions: int = 3000) -> ExperimentResult:
    from repro.experiments.shared import get_bundle

    operator_counts = list(range(1, 41))
    strategies = [
        ("exhaustive", {}),
        ("sampling-geometric", {"skip_coefficient": 0.5}),
        ("sampling-geometric", {"skip_coefficient": 5.0}),
        ("analytical", {}),
    ]
    # Measured section: a tiny trained predictor (cheap, cached across
    # experiments) drives each strategy over a real plan.
    bundle = get_bundle("cluster1", scale="tiny", seed=seed)

    series: dict[str, list] = {"n_operators": operator_counts}
    rows = []
    for name, kwargs in strategies:
        label = name + (f"(s={kwargs['skip_coefficient']:g})" if kwargs else "")
        counts = [
            expected_lookups(m, name, max_partitions=max_partitions, **kwargs)
            for m in operator_counts
        ]
        series[f"lookups_{label}"] = counts
        measured, plan_ops, explored_ops = _measure_lookups(
            bundle, _strategy_for(name, kwargs)
        )
        expected_measured = expected_lookups(
            max(explored_ops, 1),
            name,
            max_partitions=MEASURED_MAX_PARTITIONS,
            **kwargs,
        )
        rows.append(
            {
                "strategy": label,
                "lookups_1_op": counts[0],
                "lookups_10_ops": counts[9],
                "lookups_40_ops": counts[-1],
                "measured_lookups": measured,
                "measured_plan_operators": plan_ops,
                "measured_explored_operators": explored_ops,
                "measured_max_partitions": MEASURED_MAX_PARTITIONS,
                "closed_form_at_measured_size": expected_measured,
            }
        )
    return ExperimentResult(
        experiment_id="fig8c",
        title="Model lookups for partition exploration vs plan size",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            "Analytical stays at 5 lookups/operator; exhaustive scales with "
            "Pmax.  Measured columns instrument a trained predictor on a real "
            f"plan at Pmax={MEASURED_MAX_PARTITIONS}; analytical measures "
            "below 5/operator where operators lack a covering model (the "
            "paper's behaviour of only exploring where learned knowledge "
            "exists)."
        ),
    )
