"""Serving load test: the sharded tier vs one single-process service.

The paper's deployment serves every cluster's models to "millions of users"
of the optimizer (Section 5.1); what decides whether that works is serving
throughput and tail latency, not just accuracy.  This benchmark drives a
deterministic mixed request stream — per-job batched predictions plus
whole-plan costings, interleaved round-robin across clusters — through

* one single-process :class:`~repro.serving.service.CleoService` per
  cluster (the parity baseline), and
* a :class:`~repro.serving.shard.router.ShardedCleoRouter` at several
  (shards, workers) configurations,

replayed for several epochs the way recurring workloads re-price the same
operators day after day.

**What scales and why.**  Every shard brings its own prediction LRU, so the
fleet's aggregate cache capacity grows with the shard count — the memory
dimension of scale-out.  Per-shard capacity is sized *below* one cluster's
per-epoch working set (``cache.sizing`` in the result): a single shard
thrashes on the cyclic replay while four shards hold the whole set, which
is what moves steady-state throughput.  Thread fan-out (``workers``) adds
compute parallelism on multi-core hosts; on the single-core CI runner it
contributes overhead, not speedup, and the recorded per-config hit rates
and ``environment.cpu_count`` make that attribution explicit.

Predictions are **bitwise identical** across every configuration and the
single-process baseline (batch-size-invariant kernels + template-affine
routing); the ``predictions_bitwise_identical`` flag asserts it on both
the per-job batches and the plan totals.

Run ``python scripts/bench_serving.py`` to emit ``BENCH_serving.json``, or
``benchmarks/test_serving_throughput.py`` under pytest.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import numpy as np

from repro.experiments.shared import get_bundle
from repro.serving.service import CleoService, ServiceStats
from repro.serving.shard.loadgen import (
    LoadResult,
    ServiceBackend,
    ServingLoad,
    build_load,
    run_load,
)
from repro.serving.shard.router import ShardedCleoRouter

#: Default (shards, workers) sweep: the single-shard references and the
#: scale-out points the acceptance bar compares (>= 2x at >= 4 workers).
DEFAULT_CONFIGS: tuple[tuple[int, int], ...] = ((1, 1), (1, 4), (2, 4), (4, 4))


def _parity(result: LoadResult, baseline: LoadResult) -> bool:
    return bool(
        len(result.predictions) == len(baseline.predictions)
        and all(
            np.array_equal(a, b)
            for a, b in zip(baseline.predictions, result.predictions)
        )
        and result.plan_totals == baseline.plan_totals
    )


def _measure(result: LoadResult, hit_rate: float) -> dict:
    return {
        "seconds_total": round(result.total_seconds, 4),
        "seconds_per_epoch": [round(s, 4) for s in result.epoch_seconds],
        "throughput_predictions_per_second": round(result.throughput, 1),
        "steady_state_predictions_per_second": round(
            result.steady_state_throughput, 1
        ),
        "latency_p50_ms": round(result.p50_ms, 4),
        "latency_p99_ms": round(result.p99_ms, 4),
        "cache_hit_rate": round(hit_rate, 4),
    }


def run_benchmark(
    scale: str = "small",
    clusters: tuple[str, ...] = ("cluster1", "cluster2"),
    seed: int = 0,
    epochs: int = 4,
    configs: tuple[tuple[int, int], ...] = DEFAULT_CONFIGS,
    cache_fraction: float = 0.5,
    max_jobs_per_cluster: int | None = None,
) -> dict:
    """Replay the load against every serving configuration; JSON-ready dict.

    ``multi_shard_speedup`` compares steady-state throughput of the widest
    multi-shard config against the single-shard config at the same worker
    count (both sides pay the same fan-out machinery; only the shard count
    differs).
    """
    bundles = {
        cluster: get_bundle(cluster, scale=scale, seed=seed) for cluster in clusters
    }
    load: ServingLoad = build_load(
        bundles, max_jobs_per_cluster=max_jobs_per_cluster
    )
    capacity = load.suggested_cache_capacity(cache_fraction)
    predictors = {cluster: bundle.predictor() for cluster, bundle in bundles.items()}

    baseline_services = {
        cluster: CleoService(predictor, prediction_cache_size=capacity)
        for cluster, predictor in predictors.items()
    }
    baseline = run_load(ServiceBackend(baseline_services), load, epochs=epochs)
    baseline_stats = ServiceStats.aggregate(
        service.stats() for service in baseline_services.values()
    )

    config_rows: list[dict] = []
    by_key: dict[tuple[int, int], LoadResult] = {}
    for shards, workers in configs:
        with ShardedCleoRouter(
            predictors,
            n_shards=shards,
            n_workers=workers,
            prediction_cache_size=capacity,
        ) as router:
            result = run_load(router, load, epochs=epochs)
            stats = router.stats()
        by_key[(shards, workers)] = result
        config_rows.append(
            {
                "shards": shards,
                "workers": workers,
                **_measure(result, stats.cache.hit_rate),
                "aggregate_cache_capacity": stats.cache.capacity,
                "predictions_bitwise_identical": _parity(result, baseline),
            }
        )

    multi = [(s, w) for s, w in configs if s > 1 and w >= 4]
    speedup = None
    speedup_basis = None
    if multi:
        best_key = max(multi, key=lambda k: by_key[k].steady_state_throughput)
        single_key = (1, best_key[1]) if (1, best_key[1]) in by_key else None
        if single_key is None:
            singles = [(s, w) for s, w in configs if s == 1]
            single_key = singles[0] if singles else None
        if single_key is not None:
            speedup = (
                by_key[best_key].steady_state_throughput
                / by_key[single_key].steady_state_throughput
            )
            speedup_basis = (
                f"steady-state predictions/s, {best_key[0]} shards x "
                f"{best_key[1]} workers vs 1 shard x {single_key[1]} workers"
            )

    return {
        "benchmark": "serving_throughput",
        "workload": {
            "clusters": list(load.clusters),
            "scale": scale,
            "seed": seed,
            "epochs": epochs,
            "requests_per_epoch": len(load.requests),
            "predictions_per_epoch": load.n_predictions,
            "plan_requests_per_epoch": sum(
                1 for r in load.requests if not hasattr(r, "requests")
            ),
            "unique_requests_per_cluster": dict(load.unique_keys),
        },
        "cache": {
            "per_shard_capacity": capacity,
            "sizing": (
                f"{cache_fraction:.0%} of the smallest cluster's per-epoch "
                "working set: one shard thrashes on the cyclic replay, the "
                "widest fleet's aggregate capacity holds the whole set"
            ),
        },
        "single_process": _measure(baseline, baseline_stats.cache.hit_rate),
        "configs": config_rows,
        "multi_shard_speedup": None if speedup is None else round(speedup, 2),
        "speedup_basis": speedup_basis,
        "predictions_bitwise_identical": all(
            row["predictions_bitwise_identical"] for row in config_rows
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """Human summary: one line per configuration plus the headline."""
    workload = result["workload"]
    lines = [
        f"serving_throughput [{'+'.join(workload['clusters'])} "
        f"scale={workload['scale']} seed={workload['seed']} "
        f"epochs={workload['epochs']}]: "
        f"{workload['predictions_per_epoch']} predictions + "
        f"{workload['plan_requests_per_epoch']} plan costs per epoch, "
        f"per-shard cache {result['cache']['per_shard_capacity']}"
    ]
    single = result["single_process"]
    lines.append(
        f"  single-process: "
        f"{single['steady_state_predictions_per_second']:.0f} predictions/s "
        f"steady-state, p50 {single['latency_p50_ms']:.2f} ms, "
        f"p99 {single['latency_p99_ms']:.2f} ms"
    )
    for row in result["configs"]:
        lines.append(
            f"  {row['shards']} shard(s) x {row['workers']} worker(s): "
            f"{row['steady_state_predictions_per_second']:.0f} predictions/s "
            f"steady-state, hit rate {row['cache_hit_rate']:.2f}, "
            f"p50 {row['latency_p50_ms']:.2f} ms, "
            f"p99 {row['latency_p99_ms']:.2f} ms, "
            f"parity={row['predictions_bitwise_identical']}"
        )
    if result["multi_shard_speedup"] is not None:
        lines.append(
            f"  multi-shard speedup: {result['multi_shard_speedup']}x "
            f"({result['speedup_basis']})"
        )
    return "\n".join(lines)
