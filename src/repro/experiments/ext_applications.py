"""Extension: quantifying the Section 6.7 cost-model applications.

The paper closes by naming the cost-model use cases beyond plan selection
— performance prediction, resource allocation, task-runtime estimation for
scheduling, progress estimation — and leaves them as future work.  This
experiment measures each of them on the reproduction's substrate, always
comparing the learned models against the default heuristic model so the
value of accuracy (not of the surrounding machinery) is what's measured:

* **prediction**: correlation and median error of predicted vs actual
  *job-level* latencies, plus split-half calibrated 90% interval coverage;
* **scheduling**: mean job completion time and makespan under a contended
  container pool when the scheduler orders tasks by learned, default, or
  oracle runtime estimates;
* **progress**: mean deviation from ideal progress for the work-weighted
  indicator (learned predictions as weights) vs the stage-count baseline.
"""

from __future__ import annotations

import numpy as np

from repro.applications.prediction import JobPerformancePredictor
from repro.applications.progress import (
    ProgressEstimator,
    evaluate_stage_count_baseline,
)
from repro.applications.scheduling import SchedulingStudy
from repro.common.stats import median_error_pct, pearson
from repro.cost.default_model import DefaultCostModel
from repro.execution.runtime_log import RunLog
from repro.execution.trace import trace_job
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

#: Jobs fed to the scheduler study and the progress study.
N_STUDY_JOBS = 24


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    service = bundle.service()
    test_jobs = list(bundle.test_log())
    plans = {job.job_id: bundle.runner.plans[job.job_id] for job in test_jobs}

    rows: list[dict] = []

    # ---- 1. Job-level performance prediction --------------------------- #
    perf = JobPerformancePredictor(service, bundle.fresh_estimator())
    pairs = perf.validate_jobs(plans, bundle.test_log())
    predicted = np.array([p for p, _ in pairs.values()])
    actual = np.array([a for _, a in pairs.values()])
    rows.append(
        {
            "application": "prediction",
            "metric": "job-latency pearson",
            "learned": round(pearson(predicted, actual), 3),
            "default": None,
        }
    )
    rows.append(
        {
            "application": "prediction",
            "metric": "job-latency median error %",
            "learned": round(median_error_pct(predicted, actual), 1),
            "default": None,
        }
    )

    # Split-half calibration: even jobs calibrate, odd jobs evaluate.
    calibration_log = RunLog()
    calibration_log.extend(test_jobs[::2])
    evaluation = test_jobs[1::2]
    perf.calibrate_jobs(plans, calibration_log)
    covered = sum(
        perf.predict_interval(plans[job.job_id], coverage=0.9).contains(
            job.latency_seconds
        )
        for job in evaluation
    )
    rows.append(
        {
            "application": "prediction",
            "metric": "90% interval coverage %",
            "learned": round(100.0 * covered / max(len(evaluation), 1), 1),
            "default": None,
        }
    )

    # ---- 2. Scheduling with estimated task runtimes --------------------- #
    study_jobs = {job.job_id: plans[job.job_id] for job in test_jobs[:N_STUDY_JOBS]}
    # Pool sized to force contention: ~15% of the summed gang demand.
    demand = sum(
        stage_p
        for plan in study_jobs.values()
        for stage_p in _stage_partitions(plan)
    )
    pool = max(8, int(0.15 * demand / max(len(study_jobs), 1)))
    study = SchedulingStudy(
        simulator=bundle.runner.simulator,
        estimator=bundle.fresh_estimator(),
        total_containers=pool,
        policy="sjf",
    )
    outcomes = study.run(
        study_jobs,
        {"learned": service, "default": DefaultCostModel()},
    )
    oracle = study.oracle(study_jobs)
    for metric, extract in (
        ("mean job completion s", lambda o: round(o.mean_job_completion, 1)),
        ("makespan s", lambda o: round(o.makespan, 1)),
    ):
        rows.append(
            {
                "application": "scheduling",
                "metric": metric,
                "learned": extract(outcomes["learned"]),
                "default": extract(outcomes["default"]),
                "oracle": extract(oracle),
            }
        )

    # ---- 3. Progress estimation ----------------------------------------- #
    weighted_errors = []
    baseline_errors = []
    for job_id, plan in study_jobs.items():
        trace = trace_job(bundle.runner.simulator, plan)
        estimator = ProgressEstimator(perf.predict(plan))
        weighted_errors.append(estimator.evaluate(trace).mean_abs_error)
        baseline_errors.append(evaluate_stage_count_baseline(trace).mean_abs_error)
    rows.append(
        {
            "application": "progress",
            "metric": "mean |progress error|",
            "learned": round(float(np.mean(weighted_errors)), 3),
            "default": round(float(np.mean(baseline_errors)), 3),
        }
    )

    return ExperimentResult(
        experiment_id="ext_applications",
        title="Extension: Section 6.7 cost-model applications, quantified",
        rows=rows,
        paper={
            "section_6_7": (
                "performance prediction, resource allocation, task runtimes "
                "for scheduling, progress estimation named as future work"
            )
        },
        notes=(
            "Learned estimates should track job latency strongly, schedule "
            "within a few percent of the oracle (default trails), and beat "
            "stage-count progress tracking."
        ),
    )


def _stage_partitions(plan) -> list[int]:
    from repro.plan.stages import build_stage_graph

    return [stage.partition_count for stage in build_stage_graph(plan).stages]
