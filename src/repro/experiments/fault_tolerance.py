"""Chaos benchmark: serving availability under deterministic fault injection.

The paper's Section 6.7 regression-control story assumes the serving tier
*contains* failures instead of propagating them.  This benchmark replays
the PR 6 serving load (per-job batched predictions plus whole-plan
costings, round-robin across clusters) through a hardened
:class:`~repro.serving.shard.router.ShardedCleoRouter` under each named
:data:`~repro.serving.faults.SCENARIOS` fault policy, and measures what
the degradation ladder delivers:

* **availability** — the fraction of requests answered with finite,
  non-negative predictions (the ladder's contract is 1.0: a request may be
  degraded, never dropped or poisoned);
* **tail latency under faults** — p50/p99 across the replay;
* **degraded fraction** — how many predictions fell below the learned
  tier (heuristic floor / bounded default);
* **breaker and retry activity** — ladder retries, circuit-breaker opens,
  per-kind injected-fault counts.

The **zero-fault section** pins the reliability layer's no-op cost: with
no injector, the hardened router's outputs are bitwise identical and its
``ServiceStats`` counter-identical to the pre-ladder fail-fast router
(``resilience=None``) and the single-process baseline.

Fault decisions are pure functions of ``(seed, shard, cluster, sub-batch,
attempt)``, so every scenario run is exactly reproducible; the chaos
replay defaults to one fan-out worker so breaker state transitions are
replayable too (with threads, failure *interleaving* — and thus breaker
trip points — depends on scheduling).

Run ``python scripts/bench_faults.py`` to emit ``BENCH_faults.json``, or
``benchmarks/test_fault_tolerance.py`` under pytest.
"""

from __future__ import annotations

import json
import math
import os
import platform
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.experiments.shared import get_bundle
from repro.serving.faults import SCENARIOS, FaultInjector
from repro.serving.service import CleoService, ServiceStats
from repro.serving.shard.health import ResilienceConfig
from repro.serving.shard.loadgen import (
    PlanJob,
    ServiceBackend,
    ServingLoad,
    build_load,
    run_load,
)
from repro.serving.shard.router import ShardedCleoRouter

#: Scenario replay order: the no-fault control first, then each single
#: fault class in isolation, then the combined storm.
DEFAULT_SCENARIOS: tuple[str, ...] = (
    "baseline",
    "latency_spikes",
    "shard_errors",
    "timeouts",
    "corrupt_outputs",
    "mixed_chaos",
)

#: Pipeline-chaos scenario order: poisoned telemetry first, then the
#: mid-retrain crash, then serving with quarantined models.
PIPELINE_SCENARIOS: tuple[str, ...] = (
    "poisoned_runlog",
    "retrain_crash",
    "quarantined_planner",
)

#: The lifecycle rows replay a longer single-cluster log so a crash can
#: land on a mid-sequence retrain with history on both sides of it.
_LIFECYCLE_DAYS: tuple[int, ...] = (1, 2, 3, 4, 5)


def _chaos_replay(
    backend, load: ServingLoad, epochs: int, collect: bool = False
) -> dict:
    """Replay the load, tolerating and counting per-request failures.

    Unlike :func:`~repro.serving.shard.loadgen.run_load` (which lets any
    exception abort the replay — correct for parity benchmarks), a chaos
    replay must survive whatever the backend throws and score it: a
    request counts as *available* only if it returned finite, non-negative
    predictions.  With ``collect`` the per-request answers come back too,
    so two replays can be compared bitwise (the hedging parity check).
    """
    latencies: list[float] = []
    values_out: list = []
    available = 0
    total = 0
    for _ in range(epochs):
        for request in load.requests:
            answer = None
            start = time.perf_counter()
            try:
                if isinstance(request, PlanJob):
                    value = backend.predict_plan(
                        request.cluster,
                        request.root,
                        load.fresh_estimator(request.cluster),
                    )
                    ok = math.isfinite(value) and value >= 0.0
                    answer = value
                else:
                    values = backend.predict_batch(
                        request.cluster, list(request.requests)
                    )
                    ok = bool(
                        np.isfinite(values).all() and (values >= 0.0).all()
                    )
                    answer = values
            except Exception:
                ok = False
            latencies.append(time.perf_counter() - start)
            total += 1
            if collect:
                values_out.append(answer)
            if ok:
                available += 1
    lat = np.asarray(latencies, dtype=float)
    result = {
        "available": available,
        "total": total,
        "availability": available / total if total else 1.0,
        "latency_p50_ms": float(1e3 * np.quantile(lat, 0.50)),
        "latency_p99_ms": float(1e3 * np.quantile(lat, 0.99)),
    }
    if collect:
        result["values"] = values_out
    return result


def _latency_columns(durations: list[float]) -> dict:
    lat = np.asarray(durations, dtype=float)
    return {
        "latency_p50_ms": round(float(1e3 * np.quantile(lat, 0.50)), 4),
        "latency_p99_ms": round(float(1e3 * np.quantile(lat, 0.99)), 4),
    }


def _zero_fault_section(
    predictors: dict,
    load: ServingLoad,
    capacity: int,
    shards: int,
    workers: int,
    epochs: int,
    resilience: ResilienceConfig,
) -> dict:
    """Pin the reliability layer's zero-fault parity contract."""
    baseline_services = {
        cluster: CleoService(predictor, prediction_cache_size=capacity)
        for cluster, predictor in predictors.items()
    }
    baseline = run_load(ServiceBackend(baseline_services), load, epochs=epochs)

    with ShardedCleoRouter(
        predictors,
        n_shards=shards,
        n_workers=workers,
        prediction_cache_size=capacity,
        resilience=resilience,
    ) as hardened_router:
        hardened = run_load(hardened_router, load, epochs=epochs)
        hardened_stats = hardened_router.stats()

    with ShardedCleoRouter(
        predictors,
        n_shards=shards,
        n_workers=workers,
        prediction_cache_size=capacity,
        resilience=None,
    ) as legacy_router:
        legacy = run_load(legacy_router, load, epochs=epochs)
        legacy_stats = legacy_router.stats()

    bitwise = bool(
        len(hardened.predictions) == len(baseline.predictions)
        and all(
            np.array_equal(a, b)
            for a, b in zip(baseline.predictions, hardened.predictions)
        )
        and hardened.plan_totals == baseline.plan_totals
        and all(
            np.array_equal(a, b)
            for a, b in zip(legacy.predictions, hardened.predictions)
        )
        and hardened.plan_totals == legacy.plan_totals
    )
    return {
        "predictions_bitwise_identical": bitwise,
        "stats_counter_identical": hardened_stats == legacy_stats,
        "retries": hardened_stats.retries,
        "breaker_opens": hardened_stats.breaker_opens,
        "degraded_predictions": hardened_stats.degraded_predictions,
    }


def _hedging_section(
    predictors: dict,
    load: ServingLoad,
    capacity: int,
    shards: int,
    workers: int,
    epochs: int,
    seed: int,
    resilience: ResilienceConfig,
    hedge_threshold_s: float,
) -> dict:
    """Latency-spike replay with and without hedged requests.

    The hedged pass must answer every request bitwise-identically to the
    unhedged pass (the ring successor reads the same shared bank) — the
    only thing hedging is allowed to change is who pays the spike.
    """
    policy = replace(SCENARIOS["latency_spikes"], seed=seed)
    rows: dict[str, dict] = {}
    answers: dict[str, list] = {}
    configs = {
        "unhedged": resilience,
        "hedged": replace(resilience, hedge_threshold_s=hedge_threshold_s),
    }
    for mode, config in configs.items():
        with ShardedCleoRouter(
            predictors,
            n_shards=shards,
            n_workers=workers,
            prediction_cache_size=capacity,
            resilience=config,
            fault_injector=FaultInjector(policy),
        ) as router:
            measures = _chaos_replay(router, load, epochs, collect=True)
            hedge = router.hedge_stats()
        answers[mode] = measures.pop("values")
        rows[mode] = {**measures, **hedge}
    bitwise = len(answers["unhedged"]) == len(answers["hedged"]) and all(
        (a is None and b is None)
        or (a is not None and b is not None and np.array_equal(a, b))
        for a, b in zip(answers["unhedged"], answers["hedged"])
    )
    unhedged_p99 = rows["unhedged"]["latency_p99_ms"]
    hedged_p99 = rows["hedged"]["latency_p99_ms"]
    return {
        "scenario": "latency_spikes",
        "hedge_threshold_s": hedge_threshold_s,
        "spike_s": policy.latency_spike_s,
        "unhedged_p99_ms": round(unhedged_p99, 4),
        "hedged_p99_ms": round(hedged_p99, 4),
        "unhedged_p50_ms": round(rows["unhedged"]["latency_p50_ms"], 4),
        "hedged_p50_ms": round(rows["hedged"]["latency_p50_ms"], 4),
        "p99_speedup": round(unhedged_p99 / hedged_p99, 3) if hedged_p99 else None,
        "hedges": rows["hedged"]["hedges"],
        "hedge_wins": rows["hedged"]["hedge_wins"],
        "unhedged_hedges": rows["unhedged"]["hedges"],
        "availability": round(rows["hedged"]["availability"], 6),
        "predictions_bitwise_identical": bitwise,
    }


def _poisoned_runlog_row(scale: str, seed: int) -> dict:
    """Train-through-poison recovery: NaNs, outliers, duplicated and
    dropped telemetry rows injected into the run log; the training gate
    must excise them and every day must still be scored."""
    from repro.common.chaos import POISON_SCENARIOS, RunLogPoisoner
    from repro.core.lifecycle import LifecycleManager, RetrainPolicy

    bundle = get_bundle("cluster1", scale=scale, days=_LIFECYCLE_DAYS, seed=seed)
    policy = replace(
        POISON_SCENARIOS["poisoned_runlog"], days=_LIFECYCLE_DAYS[:-1], seed=seed
    )
    poisoned, injected = RunLogPoisoner(policy).poison(bundle.log)
    manager = LifecycleManager(policy=RetrainPolicy(window_days=2, frequency_days=2))
    days = list(_LIFECYCLE_DAYS[2:])
    durations: list[float] = []
    excised = {"rows_dropped": 0, "invalid_latency": 0, "duplicate_rows": 0}
    scored = 0
    for day in days:
        start = time.perf_counter()
        outcome = manager.step(poisoned, day)
        durations.append(time.perf_counter() - start)
        scored += 1
        audit = manager.trainer.last_audit
        if outcome.retrained and audit is not None:
            excised["rows_dropped"] += audit.rows_dropped
            excised["invalid_latency"] += audit.invalid_latency
            excised["duplicate_rows"] += audit.duplicate_rows
    return {
        "scenario": "poisoned_runlog",
        "policy": policy.describe(),
        "injected": injected,
        "excised": excised,
        "days_scored": scored,
        "days_total": len(days),
        "availability": scored / len(days) if days else 1.0,
        "recovery": scored == len(days) and excised["rows_dropped"] > 0,
        **_latency_columns(durations),
    }


def _retrain_crash_row(scale: str, seed: int, tmpdir: str) -> dict:
    """Mid-retrain crash recovery: a deterministic crash lands between
    training and publish; the durable manager resumes, retries the day,
    and the whole replay must end bitwise-identical to a crash-free run
    with no half-published version ever visible."""
    from repro.common.chaos import CrashPolicy, PipelineChaos
    from repro.common.errors import InjectedCrashError
    from repro.core.lifecycle import LifecycleManager, RetrainPolicy

    bundle = get_bundle("cluster1", scale=scale, days=_LIFECYCLE_DAYS, seed=seed)
    log = bundle.log
    days = list(_LIFECYCLE_DAYS[2:])
    crash_day = days[1]
    retrain = RetrainPolicy(window_days=2, frequency_days=1)
    state_path = Path(tmpdir) / "lifecycle_state.json"
    chaos = PipelineChaos(
        CrashPolicy(
            name="retrain_crash",
            points=("pre_publish",),
            days=(crash_day,),
            seed=seed,
        )
    )
    manager = LifecycleManager(policy=retrain, state_path=state_path, chaos=chaos)
    outcomes = []
    durations: list[float] = []
    crashes = 0
    pending = list(days)
    while pending:
        day = pending[0]
        start = time.perf_counter()
        try:
            outcomes.append(manager.step(log, day))
        except InjectedCrashError:
            crashes += 1
            durations.append(time.perf_counter() - start)
            # The old process is dead; a new one resumes from disk and
            # retries the same day (the chaos injector models a transient
            # condition: the retry is allowed through).
            manager = LifecycleManager.resume(
                state_path, policy=retrain, chaos=chaos
            )
            continue
        durations.append(time.perf_counter() - start)
        pending.pop(0)

    clean = LifecycleManager(policy=retrain)
    clean_outcomes = [clean.step(log, day) for day in days]
    identical = len(outcomes) == len(clean_outcomes) and all(
        a.day == b.day
        and a.active_version == b.active_version
        and a.median_error_pct == b.median_error_pct
        for a, b in zip(clean_outcomes, outcomes)
    )
    return {
        "scenario": "retrain_crash",
        "crash_point": "pre_publish",
        "crash_day": crash_day,
        "crashes_injected": crashes,
        "days_scored": len(outcomes),
        "days_total": len(days),
        "availability": len(outcomes) / len(days) if days else 1.0,
        "versions_published": manager.registry.version_count,
        "versions_clean_run": clean.registry.version_count,
        "replay_bitwise_identical": identical,
        "recovery": identical
        and crashes == 1
        and manager.registry.version_count == clean.registry.version_count,
        **_latency_columns(durations),
    }


def _quarantined_planner_row(
    bundles: dict, load: ServingLoad, capacity: int
) -> dict:
    """Serving with quarantined models: a replayed quarantine ledger
    removes a slice of each cluster's specialized models; the predictor
    ladder must absorb the gap with availability 1.0."""
    from repro.core.config import ModelKind
    from repro.core.regression_control import ModelQuarantine
    from repro.core.serialization import predictor_from_dict, predictor_to_dict

    quarantine = ModelQuarantine()
    services = {}
    removed = 0
    replay_idempotent = True
    for cluster, bundle in bundles.items():
        # Deep-copy via the serialization round-trip: the bundle's cached
        # predictor also backs the serving sections and must stay intact.
        predictor = predictor_from_dict(predictor_to_dict(bundle.predictor()))
        signatures = sorted(predictor.store.models[ModelKind.OP_SUBGRAPH])
        for signature in signatures[: max(1, len(signatures) // 10)]:
            quarantine.record(ModelKind.OP_SUBGRAPH, signature)
        removed += quarantine.replay(predictor.store)
        # Replaying an already-applied ledger must be a typed no-op.
        replay_idempotent = replay_idempotent and (
            quarantine.replay(predictor.store) == 0
        )
        services[cluster] = CleoService(predictor, prediction_cache_size=capacity)

    measures = _chaos_replay(ServiceBackend(services), load, epochs=1)
    return {
        "scenario": "quarantined_planner",
        "ledger_entries": len(quarantine.ledger()),
        "models_removed": removed,
        "replay_idempotent": replay_idempotent,
        "availability": round(measures["availability"], 6),
        "recovery": measures["availability"] == 1.0
        and removed > 0
        and replay_idempotent,
        "latency_p50_ms": round(measures["latency_p50_ms"], 4),
        "latency_p99_ms": round(measures["latency_p99_ms"], 4),
    }


def run_benchmark(
    scale: str = "small",
    clusters: tuple[str, ...] = ("cluster1", "cluster2"),
    seed: int = 0,
    epochs: int = 2,
    shards: int = 3,
    workers: int = 1,
    scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
    cache_fraction: float = 0.5,
    max_jobs_per_cluster: int | None = None,
    pipeline_scenarios: tuple[str, ...] = PIPELINE_SCENARIOS,
    hedge_threshold_s: float | None = 0.001,
) -> dict:
    """Replay the serving load under every fault scenario; JSON-ready dict."""
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown fault scenarios {unknown}; have {sorted(SCENARIOS)}")
    unknown = [n for n in pipeline_scenarios if n not in PIPELINE_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown pipeline scenarios {unknown}; have {list(PIPELINE_SCENARIOS)}"
        )
    bundles = {
        cluster: get_bundle(cluster, scale=scale, seed=seed) for cluster in clusters
    }
    load: ServingLoad = build_load(bundles, max_jobs_per_cluster=max_jobs_per_cluster)
    capacity = load.suggested_cache_capacity(cache_fraction)
    predictors = {cluster: bundle.predictor() for cluster, bundle in bundles.items()}
    resilience = ResilienceConfig()

    zero_fault = _zero_fault_section(
        predictors, load, capacity, shards, workers, epochs, resilience
    )

    scenario_rows: list[dict] = []
    for name in scenarios:
        policy = replace(SCENARIOS[name], seed=seed)
        injector = FaultInjector(policy)
        with ShardedCleoRouter(
            predictors,
            n_shards=shards,
            n_workers=workers,
            prediction_cache_size=capacity,
            resilience=resilience,
            fault_injector=injector,
        ) as router:
            measures = _chaos_replay(router, load, epochs)
            stats = router.stats()
            health = router.resilience_stats()
            injected = router.fault_stats()
        predictions_issued = stats.predictions or 1
        scenario_rows.append(
            {
                "scenario": name,
                "policy": {
                    "error_rate": policy.error_rate,
                    "timeout_rate": policy.timeout_rate,
                    "corrupt_rate": policy.corrupt_rate,
                    "latency_rate": policy.latency_rate,
                    "seed": policy.seed,
                },
                "availability": round(measures["availability"], 6),
                "latency_p50_ms": round(measures["latency_p50_ms"], 4),
                "latency_p99_ms": round(measures["latency_p99_ms"], 4),
                "injected_faults": injected,
                "retries": stats.retries,
                "breaker_opens": stats.breaker_opens,
                "degraded_predictions": stats.degraded_predictions,
                "degraded_fraction": round(
                    stats.degraded_predictions / predictions_issued, 6
                ),
                "breaker_states": [h.state.value for h in health],
                "shard_failure_rates": [
                    round(h.window_failure_rate, 4) for h in health
                ],
            }
        )

    hedging = None
    if hedge_threshold_s is not None and "latency_spikes" in scenarios:
        hedging = _hedging_section(
            predictors,
            load,
            capacity,
            shards,
            workers,
            epochs,
            seed,
            resilience,
            hedge_threshold_s,
        )

    pipeline_rows: list[dict] = []
    if pipeline_scenarios:
        with tempfile.TemporaryDirectory() as tmpdir:
            for name in pipeline_scenarios:
                if name == "poisoned_runlog":
                    pipeline_rows.append(_poisoned_runlog_row(scale, seed))
                elif name == "retrain_crash":
                    pipeline_rows.append(_retrain_crash_row(scale, seed, tmpdir))
                elif name == "quarantined_planner":
                    pipeline_rows.append(
                        _quarantined_planner_row(bundles, load, capacity)
                    )

    baseline_rows = [r for r in scenario_rows if r["scenario"] == "baseline"]
    return {
        "benchmark": "fault_tolerance",
        "workload": {
            "clusters": list(load.clusters),
            "scale": scale,
            "seed": seed,
            "epochs": epochs,
            "shards": shards,
            "workers": workers,
            "requests_per_epoch": len(load.requests),
            "predictions_per_epoch": load.n_predictions,
            "per_shard_cache_capacity": capacity,
        },
        "resilience": {
            "max_retries": resilience.max_retries,
            "failure_threshold": resilience.failure_threshold,
            "window": resilience.window,
            "cooldown_calls": resilience.cooldown_calls,
            "deadline_s": resilience.deadline_s,
        },
        "zero_fault": zero_fault,
        "scenarios": scenario_rows,
        "hedging": hedging,
        "pipeline": pipeline_rows,
        "pipeline_all_recovered": (
            all(r["availability"] == 1.0 and r["recovery"] for r in pipeline_rows)
            if pipeline_rows
            else None
        ),
        "baseline_availability": (
            baseline_rows[0]["availability"] if baseline_rows else None
        ),
        "all_available": all(r["availability"] == 1.0 for r in scenario_rows),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
    }


#: One-line docs for the pipeline-chaos rows (shown by ``--list-scenarios``).
_PIPELINE_DOCS: dict[str, str] = {
    "poisoned_runlog": (
        "NaN/outlier latencies, duplicated and dropped telemetry rows "
        "injected into the run log; the training gate excises them"
    ),
    "retrain_crash": (
        "deterministic crash between training and publish; the durable "
        "lifecycle manager resumes with no half-published version"
    ),
    "quarantined_planner": (
        "a replayed quarantine ledger removes specialized models; the "
        "predictor ladder serves through the gap"
    ),
}


def list_scenarios() -> str:
    """Human-readable catalogue of every chaos scenario (CLI helper)."""
    from repro.common.chaos import POISON_SCENARIOS

    lines = ["serving scenarios (deterministic fault injection):"]
    for name in DEFAULT_SCENARIOS:
        lines.append(f"  {name}: {SCENARIOS[name].describe()}")
    lines.append("pipeline scenarios (training/lifecycle chaos):")
    for name in PIPELINE_SCENARIOS:
        lines.append(f"  {name}: {_PIPELINE_DOCS[name]}")
    lines.append("run-log poison policies (repro.common.chaos):")
    for name, policy in POISON_SCENARIOS.items():
        lines.append(f"  {name}: {policy.describe()}")
    return "\n".join(lines)


def select_scenarios(names: list[str]) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Split a ``--scenario`` filter into (serving, pipeline) selections.

    Order follows the canonical replay order, not the order given; unknown
    names raise ``ValueError`` listing what exists.
    """
    unknown = [
        n for n in names if n not in SCENARIOS and n not in PIPELINE_SCENARIOS
    ]
    if unknown:
        raise ValueError(
            f"unknown scenarios {unknown}; serving: {sorted(SCENARIOS)}, "
            f"pipeline: {list(PIPELINE_SCENARIOS)}"
        )
    serving = tuple(n for n in DEFAULT_SCENARIOS if n in names)
    pipeline = tuple(n for n in PIPELINE_SCENARIOS if n in names)
    return serving, pipeline


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """Human summary: one line per scenario plus the parity headline."""
    workload = result["workload"]
    lines = [
        f"fault_tolerance [{'+'.join(workload['clusters'])} "
        f"scale={workload['scale']} seed={workload['seed']} "
        f"epochs={workload['epochs']}, {workload['shards']} shard(s) x "
        f"{workload['workers']} worker(s)]: "
        f"{workload['predictions_per_epoch']} predictions per epoch"
    ]
    zero = result["zero_fault"]
    lines.append(
        f"  zero-fault: bitwise={zero['predictions_bitwise_identical']}, "
        f"stats identical to fail-fast router="
        f"{zero['stats_counter_identical']}"
    )
    for row in result["scenarios"]:
        injected = row["injected_faults"].get("total", 0)
        lines.append(
            f"  {row['scenario']}: availability {row['availability']:.4f}, "
            f"{injected} faults injected, {row['retries']} retries, "
            f"{row['breaker_opens']} breaker opens, "
            f"degraded {row['degraded_fraction']:.4f}, "
            f"p99 {row['latency_p99_ms']:.2f} ms"
        )
    hedging = result.get("hedging")
    if hedging is not None:
        lines.append(
            f"  hedging (latency_spikes, SLO {1e3 * hedging['hedge_threshold_s']:.1f} ms): "
            f"p99 {hedging['unhedged_p99_ms']:.2f} -> {hedging['hedged_p99_ms']:.2f} ms, "
            f"{hedging['hedges']} hedges ({hedging['hedge_wins']} wins), "
            f"bitwise={hedging['predictions_bitwise_identical']}"
        )
    for row in result.get("pipeline", []):
        lines.append(
            f"  pipeline/{row['scenario']}: availability {row['availability']:.4f}, "
            f"recovery={row['recovery']}, "
            f"p50 {row['latency_p50_ms']:.2f} ms, p99 {row['latency_p99_ms']:.2f} ms"
        )
    if result.get("pipeline_all_recovered") is not None:
        lines.append(
            f"  pipeline chaos fully recovered: {result['pipeline_all_recovered']}"
        )
    lines.append(f"  all scenarios fully available: {result['all_available']}")
    return "\n".join(lines)
