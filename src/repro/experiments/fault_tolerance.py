"""Chaos benchmark: serving availability under deterministic fault injection.

The paper's Section 6.7 regression-control story assumes the serving tier
*contains* failures instead of propagating them.  This benchmark replays
the PR 6 serving load (per-job batched predictions plus whole-plan
costings, round-robin across clusters) through a hardened
:class:`~repro.serving.shard.router.ShardedCleoRouter` under each named
:data:`~repro.serving.faults.SCENARIOS` fault policy, and measures what
the degradation ladder delivers:

* **availability** — the fraction of requests answered with finite,
  non-negative predictions (the ladder's contract is 1.0: a request may be
  degraded, never dropped or poisoned);
* **tail latency under faults** — p50/p99 across the replay;
* **degraded fraction** — how many predictions fell below the learned
  tier (heuristic floor / bounded default);
* **breaker and retry activity** — ladder retries, circuit-breaker opens,
  per-kind injected-fault counts.

The **zero-fault section** pins the reliability layer's no-op cost: with
no injector, the hardened router's outputs are bitwise identical and its
``ServiceStats`` counter-identical to the pre-ladder fail-fast router
(``resilience=None``) and the single-process baseline.

Fault decisions are pure functions of ``(seed, shard, cluster, sub-batch,
attempt)``, so every scenario run is exactly reproducible; the chaos
replay defaults to one fan-out worker so breaker state transitions are
replayable too (with threads, failure *interleaving* — and thus breaker
trip points — depends on scheduling).

Run ``python scripts/bench_faults.py`` to emit ``BENCH_faults.json``, or
``benchmarks/test_fault_tolerance.py`` under pytest.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.experiments.shared import get_bundle
from repro.serving.faults import SCENARIOS, FaultInjector
from repro.serving.service import CleoService, ServiceStats
from repro.serving.shard.health import ResilienceConfig
from repro.serving.shard.loadgen import (
    PlanJob,
    ServiceBackend,
    ServingLoad,
    build_load,
    run_load,
)
from repro.serving.shard.router import ShardedCleoRouter

#: Scenario replay order: the no-fault control first, then each single
#: fault class in isolation, then the combined storm.
DEFAULT_SCENARIOS: tuple[str, ...] = (
    "baseline",
    "latency_spikes",
    "shard_errors",
    "timeouts",
    "corrupt_outputs",
    "mixed_chaos",
)


def _chaos_replay(backend, load: ServingLoad, epochs: int) -> dict:
    """Replay the load, tolerating and counting per-request failures.

    Unlike :func:`~repro.serving.shard.loadgen.run_load` (which lets any
    exception abort the replay — correct for parity benchmarks), a chaos
    replay must survive whatever the backend throws and score it: a
    request counts as *available* only if it returned finite, non-negative
    predictions.
    """
    latencies: list[float] = []
    available = 0
    total = 0
    for _ in range(epochs):
        for request in load.requests:
            start = time.perf_counter()
            try:
                if isinstance(request, PlanJob):
                    value = backend.predict_plan(
                        request.cluster,
                        request.root,
                        load.fresh_estimator(request.cluster),
                    )
                    ok = math.isfinite(value) and value >= 0.0
                else:
                    values = backend.predict_batch(
                        request.cluster, list(request.requests)
                    )
                    ok = bool(
                        np.isfinite(values).all() and (values >= 0.0).all()
                    )
            except Exception:
                ok = False
            latencies.append(time.perf_counter() - start)
            total += 1
            if ok:
                available += 1
    lat = np.asarray(latencies, dtype=float)
    return {
        "available": available,
        "total": total,
        "availability": available / total if total else 1.0,
        "latency_p50_ms": float(1e3 * np.quantile(lat, 0.50)),
        "latency_p99_ms": float(1e3 * np.quantile(lat, 0.99)),
    }


def _zero_fault_section(
    predictors: dict,
    load: ServingLoad,
    capacity: int,
    shards: int,
    workers: int,
    epochs: int,
    resilience: ResilienceConfig,
) -> dict:
    """Pin the reliability layer's zero-fault parity contract."""
    baseline_services = {
        cluster: CleoService(predictor, prediction_cache_size=capacity)
        for cluster, predictor in predictors.items()
    }
    baseline = run_load(ServiceBackend(baseline_services), load, epochs=epochs)

    with ShardedCleoRouter(
        predictors,
        n_shards=shards,
        n_workers=workers,
        prediction_cache_size=capacity,
        resilience=resilience,
    ) as hardened_router:
        hardened = run_load(hardened_router, load, epochs=epochs)
        hardened_stats = hardened_router.stats()

    with ShardedCleoRouter(
        predictors,
        n_shards=shards,
        n_workers=workers,
        prediction_cache_size=capacity,
        resilience=None,
    ) as legacy_router:
        legacy = run_load(legacy_router, load, epochs=epochs)
        legacy_stats = legacy_router.stats()

    bitwise = bool(
        len(hardened.predictions) == len(baseline.predictions)
        and all(
            np.array_equal(a, b)
            for a, b in zip(baseline.predictions, hardened.predictions)
        )
        and hardened.plan_totals == baseline.plan_totals
        and all(
            np.array_equal(a, b)
            for a, b in zip(legacy.predictions, hardened.predictions)
        )
        and hardened.plan_totals == legacy.plan_totals
    )
    return {
        "predictions_bitwise_identical": bitwise,
        "stats_counter_identical": hardened_stats == legacy_stats,
        "retries": hardened_stats.retries,
        "breaker_opens": hardened_stats.breaker_opens,
        "degraded_predictions": hardened_stats.degraded_predictions,
    }


def run_benchmark(
    scale: str = "small",
    clusters: tuple[str, ...] = ("cluster1", "cluster2"),
    seed: int = 0,
    epochs: int = 2,
    shards: int = 3,
    workers: int = 1,
    scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
    cache_fraction: float = 0.5,
    max_jobs_per_cluster: int | None = None,
) -> dict:
    """Replay the serving load under every fault scenario; JSON-ready dict."""
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown fault scenarios {unknown}; have {sorted(SCENARIOS)}")
    bundles = {
        cluster: get_bundle(cluster, scale=scale, seed=seed) for cluster in clusters
    }
    load: ServingLoad = build_load(bundles, max_jobs_per_cluster=max_jobs_per_cluster)
    capacity = load.suggested_cache_capacity(cache_fraction)
    predictors = {cluster: bundle.predictor() for cluster, bundle in bundles.items()}
    resilience = ResilienceConfig()

    zero_fault = _zero_fault_section(
        predictors, load, capacity, shards, workers, epochs, resilience
    )

    scenario_rows: list[dict] = []
    for name in scenarios:
        policy = replace(SCENARIOS[name], seed=seed)
        injector = FaultInjector(policy)
        with ShardedCleoRouter(
            predictors,
            n_shards=shards,
            n_workers=workers,
            prediction_cache_size=capacity,
            resilience=resilience,
            fault_injector=injector,
        ) as router:
            measures = _chaos_replay(router, load, epochs)
            stats = router.stats()
            health = router.resilience_stats()
            injected = router.fault_stats()
        predictions_issued = stats.predictions or 1
        scenario_rows.append(
            {
                "scenario": name,
                "policy": {
                    "error_rate": policy.error_rate,
                    "timeout_rate": policy.timeout_rate,
                    "corrupt_rate": policy.corrupt_rate,
                    "latency_rate": policy.latency_rate,
                    "seed": policy.seed,
                },
                "availability": round(measures["availability"], 6),
                "latency_p50_ms": round(measures["latency_p50_ms"], 4),
                "latency_p99_ms": round(measures["latency_p99_ms"], 4),
                "injected_faults": injected,
                "retries": stats.retries,
                "breaker_opens": stats.breaker_opens,
                "degraded_predictions": stats.degraded_predictions,
                "degraded_fraction": round(
                    stats.degraded_predictions / predictions_issued, 6
                ),
                "breaker_states": [h.state.value for h in health],
                "shard_failure_rates": [
                    round(h.window_failure_rate, 4) for h in health
                ],
            }
        )

    baseline_rows = [r for r in scenario_rows if r["scenario"] == "baseline"]
    return {
        "benchmark": "fault_tolerance",
        "workload": {
            "clusters": list(load.clusters),
            "scale": scale,
            "seed": seed,
            "epochs": epochs,
            "shards": shards,
            "workers": workers,
            "requests_per_epoch": len(load.requests),
            "predictions_per_epoch": load.n_predictions,
            "per_shard_cache_capacity": capacity,
        },
        "resilience": {
            "max_retries": resilience.max_retries,
            "failure_threshold": resilience.failure_threshold,
            "window": resilience.window,
            "cooldown_calls": resilience.cooldown_calls,
            "deadline_s": resilience.deadline_s,
        },
        "zero_fault": zero_fault,
        "scenarios": scenario_rows,
        "baseline_availability": (
            baseline_rows[0]["availability"] if baseline_rows else None
        ),
        "all_available": all(r["availability"] == 1.0 for r in scenario_rows),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """Human summary: one line per scenario plus the parity headline."""
    workload = result["workload"]
    lines = [
        f"fault_tolerance [{'+'.join(workload['clusters'])} "
        f"scale={workload['scale']} seed={workload['seed']} "
        f"epochs={workload['epochs']}, {workload['shards']} shard(s) x "
        f"{workload['workers']} worker(s)]: "
        f"{workload['predictions_per_epoch']} predictions per epoch"
    ]
    zero = result["zero_fault"]
    lines.append(
        f"  zero-fault: bitwise={zero['predictions_bitwise_identical']}, "
        f"stats identical to fail-fast router="
        f"{zero['stats_counter_identical']}"
    )
    for row in result["scenarios"]:
        injected = row["injected_faults"].get("total", 0)
        lines.append(
            f"  {row['scenario']}: availability {row['availability']:.4f}, "
            f"{injected} faults injected, {row['retries']} retries, "
            f"{row['breaker_opens']} breaker opens, "
            f"degraded {row['degraded_fraction']:.4f}, "
            f"p99 {row['latency_p99_ms']:.2f} ms"
        )
    lines.append(f"  all scenarios fully available: {result['all_available']}")
    return "\n".join(lines)
