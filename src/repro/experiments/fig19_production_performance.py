"""Figure 19 / Section 6.6.1: end-to-end performance on production jobs.

The paper recompiles one virtual cluster's jobs with Cleo: 22% change plans
without partition exploration, 39% with it.  Seventeen jobs with changed
physical operators are executed: 70% improve latency (average +15.35%,
cumulative +21.3%), total processing time falls 32.2% on average (40.4%
cumulative), and optimization-time overhead stays within ~5-10%.
"""

from __future__ import annotations

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.workload.templates import instantiate

PAPER = {
    "plan_change_pct_no_partition": 22.0,
    "plan_change_pct_with_partition": 39.0,
    "jobs_improved_pct": 70.0,
    "avg_latency_improvement_pct": 15.35,
    "cumulative_latency_improvement_pct": 21.3,
    "avg_processing_time_reduction_pct": 32.2,
    "cumulative_processing_time_reduction_pct": 40.4,
    "optimization_overhead_pct": (5.0, 10.0),
}


def _structure(plan) -> list[str]:
    return [op.op_type.value for op in plan.walk()]


def _partitions(plan) -> list[int]:
    return [op.partition_count for op in plan.walk()]


def run(scale: str = "small", seed: int = 0, executed_jobs: int = 17) -> ExperimentResult:
    bundle = get_bundle("cluster4", scale=scale, seed=seed)
    predictor = bundle.predictor()
    cleo_model = CleoCostModel(predictor)
    estimator = CardinalityEstimator(bundle.runner.estimator_config)

    base_planner = bundle.runner._planner
    cleo_structural = QueryPlanner(cleo_model, estimator, PlannerConfig())
    cleo_full = QueryPlanner(
        cleo_model, estimator, PlannerConfig(partition_strategy=AnalyticalStrategy())
    )

    test_day = bundle.log.days[-1]
    catalog = bundle.generator.catalog_for_day(test_day)
    jobs = bundle.generator.jobs_for_day(test_day)

    structural_changes = 0
    full_changes = 0
    executed = []
    default_opt_times: list[float] = []
    cleo_opt_times: list[float] = []

    for job in jobs:
        logical = instantiate(job, catalog)
        base_planner.jitter_salt = job.job_id
        planned_default = base_planner.plan(logical)
        planned_structural = cleo_structural.plan(logical)
        planned_full = cleo_full.plan(logical)
        default_opt_times.append(planned_default.optimize_seconds)
        cleo_opt_times.append(planned_full.optimize_seconds)

        structure_changed = _structure(planned_default.plan) != _structure(
            planned_structural.plan
        )
        if structure_changed:
            structural_changes += 1
        if structure_changed or (
            _structure(planned_default.plan) == _structure(planned_full.plan)
            and _partitions(planned_default.plan) != _partitions(planned_full.plan)
        ) or _structure(planned_default.plan) != _structure(planned_full.plan):
            full_changes += 1
        if structure_changed and len(executed) < executed_jobs:
            executed.append((job, planned_default.plan, planned_full.plan))

    simulator = bundle.runner.simulator
    rows = []
    base_lat, cleo_lat, base_cpu, cleo_cpu = [], [], [], []
    for i, (job, default_plan, cleo_plan) in enumerate(executed, start=1):
        l0 = simulator.expected_job_latency(default_plan)
        l1 = simulator.expected_job_latency(cleo_plan)
        c0 = simulator.expected_cpu_seconds(default_plan)
        c1 = simulator.expected_cpu_seconds(cleo_plan)
        base_lat.append(l0)
        cleo_lat.append(l1)
        base_cpu.append(c0)
        cleo_cpu.append(c1)
        rows.append(
            {
                "job": i,
                "latency_default_min": round(l0 / 60.0, 2),
                "latency_cleo_min": round(l1 / 60.0, 2),
                "latency_change_pct": round(100.0 * (l0 - l1) / l0, 1),
                "cpu_default_hr": round(c0 / 3600.0, 2),
                "cpu_cleo_hr": round(c1 / 3600.0, 2),
                "cpu_change_pct": round(100.0 * (c0 - c1) / c0, 1),
            }
        )

    base_lat_arr, cleo_lat_arr = np.asarray(base_lat), np.asarray(cleo_lat)
    base_cpu_arr, cleo_cpu_arr = np.asarray(base_cpu), np.asarray(cleo_cpu)
    improvement = (base_lat_arr - cleo_lat_arr) / base_lat_arr
    overhead_pct = 100.0 * (np.mean(cleo_opt_times) - np.mean(default_opt_times)) / max(
        np.mean(default_opt_times), 1e-9
    )
    summary = {
        "jobs_total": len(jobs),
        "plan_change_pct_structural": round(100.0 * structural_changes / len(jobs), 1),
        "plan_change_pct_with_partition": round(100.0 * full_changes / len(jobs), 1),
        "jobs_executed": len(executed),
        "jobs_improved_pct": round(100.0 * float((improvement > 0).mean()), 1) if executed else 0,
        "avg_latency_improvement_pct": round(100.0 * float(improvement.mean()), 1) if executed else 0,
        "cumulative_latency_improvement_pct": (
            round(100.0 * (1.0 - cleo_lat_arr.sum() / base_lat_arr.sum()), 1) if executed else 0
        ),
        "cumulative_cpu_reduction_pct": (
            round(100.0 * (1.0 - cleo_cpu_arr.sum() / base_cpu_arr.sum()), 1) if executed else 0
        ),
        "optimization_overhead_pct": round(float(overhead_pct), 1),
    }
    return ExperimentResult(
        experiment_id="fig19",
        title="Production jobs replanned with Cleo: latency, CPU, overhead",
        rows=rows + [{"job": "summary", **summary}],
        series={
            "latency_default_s": [round(v, 1) for v in base_lat],
            "latency_cleo_s": [round(v, 1) for v in cleo_lat],
            "cpu_default_s": [round(v, 1) for v in base_cpu],
            "cpu_cleo_s": [round(v, 1) for v in cleo_cpu],
        },
        paper=PAPER,
        notes=(
            "Shape: majority of changed jobs improve latency; total "
            "processing time falls; partition exploration adds plan changes."
        ),
    )
