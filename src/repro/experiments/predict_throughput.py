"""Prediction-throughput benchmark: packed serving runtime vs grouped path.

The paper's steady-state cost is *serving*: "all models relevant for a
cluster are loaded upfront by the optimizer" and consulted millions of
times per optimization pass, five learned lookups per costed operator
(Sections 5.1, 6.5).  This benchmark times pricing the canonical generated
workload through both serving paths over a trained Cleo:

* **reference** — the retained pre-packed pipeline
  (:meth:`~repro.serving.service.CleoService.predict_records_reference`):
  per-record ``PredictionRequest`` materialization, per-request cache-key
  hashing and in-batch dedup, a fresh feature-table build, per-batch
  derived-feature expansion, one object-graph model call per covering
  ``(kind, signature)`` group, tree-at-a-time ensemble traversal;
* **packed** — the table-native fast path
  (:meth:`~repro.serving.service.CleoService.predict_table`): the run log's
  cached columnar table priced in a constant number of numpy passes over
  the compiled :class:`~repro.core.packed.PackedModelBank` and the flat
  tree ensemble.

Both services run with the prediction LRU *disabled* so the benchmark
measures steady-state compute, not cache hits, and the two paths' outputs
are verified bitwise identical before the speedup is reported.  The first
packed repeat pays one-time bank compilation (recorded as
``seconds_first``); best-of-``repeats`` measures the steady state.

Run it from the CLI (``python scripts/bench_predict.py``) to emit
``BENCH_predict.json``, or through ``benchmarks/test_predict_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.trainer import CleoTrainer
from repro.experiments.train_throughput import build_workload
from repro.serving.service import CleoService


def _time_path(fn, repeats: int) -> tuple[list[float], np.ndarray]:
    times: list[float] = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    assert result is not None
    return times, result


def run_benchmark(
    scale: str = "small",
    days: tuple[int, ...] = (1, 2, 3),
    seed: int = 0,
    repeats: int = 5,
    cluster: str = "cluster1",
) -> dict:
    """Time both serving paths over one workload and check bitwise parity.

    Returns a JSON-ready dict; ``speedup`` is best-of-``repeats`` reference
    time over best packed time.
    """
    log = build_workload(scale=scale, days=days, seed=seed, cluster=cluster)
    predictor = CleoTrainer().train(log)
    records = list(log.operator_records())
    table = log.to_table()

    reference_service = CleoService(predictor, prediction_cache_size=0)
    packed_service = CleoService(predictor, prediction_cache_size=0)

    reference_times, reference = _time_path(
        lambda: reference_service.predict_records_reference(records), repeats
    )
    packed_times, packed = _time_path(
        lambda: packed_service.predict_table(table), repeats
    )

    identical = bool(np.array_equal(reference, packed))
    reference_best = min(reference_times)
    packed_best = min(packed_times)
    n = len(records)
    return {
        "benchmark": "predict_throughput",
        "workload": {
            "cluster": cluster,
            "scale": scale,
            "days": list(days),
            "seed": seed,
            "operator_count": n,
            "job_count": len(log),
        },
        "models_served": predictor.store.count(),
        "prediction_cache": "disabled (steady-state compute, not cache hits)",
        "reference": {
            "path": "predict_records_reference (request materialization + "
            "grouped object-graph calls + tree-at-a-time ensemble)",
            "seconds": [round(t, 4) for t in reference_times],
            "seconds_best": round(reference_best, 4),
            "seconds_first": round(reference_times[0], 4),
            "predictions_per_second": round(n / reference_best, 1),
        },
        "packed": {
            "path": "predict_table (packed model bank + flat tree ensemble)",
            "seconds": [round(t, 4) for t in packed_times],
            "seconds_best": round(packed_best, 4),
            "seconds_first": round(packed_times[0], 4),
            "predictions_per_second": round(n / packed_best, 1),
        },
        "speedup": round(reference_best / packed_best, 2),
        "speedup_first_run": round(reference_times[0] / packed_times[0], 2),
        "predictions_bitwise_identical": identical,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """One-paragraph human summary of a benchmark result."""
    workload = result["workload"]
    return (
        f"predict_throughput [{workload['cluster']} scale={workload['scale']} "
        f"days={workload['days']} seed={workload['seed']}]: "
        f"{workload['operator_count']} operators, "
        f"{result['models_served']} models served; "
        f"reference {result['reference']['seconds_best']}s -> "
        f"packed {result['packed']['seconds_best']}s "
        f"({result['speedup']}x, "
        f"{result['packed']['predictions_per_second']:.0f} predictions/s, "
        f"bitwise identical={result['predictions_bitwise_identical']})"
    )
