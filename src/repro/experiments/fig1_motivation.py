"""Figure 1: accuracy of the default and manually-tuned cost models.

Reproduces the motivation study: CDFs of estimated/actual cost ratios and
Pearson correlations for the default cost model, the manually-tuned model,
and both with perfect ("actual runtime") cardinality feedback.  The paper's
numbers: correlations of 0.04 / 0.10 / 0.09 / 0.14, ratio curves spanning
100x under- to 1000x over-estimation, and the conclusion that fixing
cardinalities alone does not fix cost estimates.
"""

from __future__ import annotations

from repro.cardinality.perfect import PerfectCardinalityEstimator
from repro.common.stats import Cdf, error_ratio, median_error_pct, pearson
from repro.cost.default_model import DefaultCostModel
from repro.cost.tuned_model import TunedCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "default": 0.04,
    "tuned": 0.10,
    "default+perfect-card": 0.09,
    "tuned+perfect-card": 0.14,
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    variants = {
        "default": (DefaultCostModel(), bundle.fresh_estimator()),
        "tuned": (TunedCostModel(), bundle.fresh_estimator()),
        "default+perfect-card": (DefaultCostModel(), PerfectCardinalityEstimator()),
        "tuned+perfect-card": (TunedCostModel(), PerfectCardinalityEstimator()),
    }

    rows = []
    series: dict[str, list] = {}
    for name, (model, estimator) in variants.items():
        costs, actuals = bundle.baseline_costs(model, estimator=estimator)
        ratios = error_ratio(costs, actuals)
        cdf = Cdf.of(ratios)
        rows.append(
            {
                "model": name,
                "pearson": round(pearson(costs, actuals), 3),
                "median_error_pct": round(median_error_pct(costs, actuals), 0),
                "over_estimation_frac": round(float((costs > actuals).mean()), 2),
                "paper_pearson": PAPER[name],
            }
        )
        series[f"cdf_{name}"] = list(cdf.fractions)
    series["cdf_grid"] = list(Cdf.of([1.0]).grid)
    return ExperimentResult(
        experiment_id="fig1",
        title="Default/tuned cost model accuracy, with and without perfect cardinalities",
        rows=rows,
        series=series,
        paper={"pearson": PAPER},
        notes=(
            "All heuristic variants stay far from the ideal ratio=1 line and "
            "perfect cardinalities close only part of the gap, as in the paper."
        ),
    )
