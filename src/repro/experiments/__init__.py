"""Experiments: one module per table/figure of the paper's evaluation.

Every module exposes ``run(scale=..., seed=...) -> ExperimentResult``; the
benchmark harness under ``benchmarks/`` calls these and prints the same
rows/series the paper reports.  ``EXPERIMENTS.md`` records measured-vs-paper
for each artifact.
"""

from repro.experiments.harness import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
