"""Table 5: accuracy and coverage of every learned model vs the default.

Paper numbers (production workload): Default 0.04/258%/100%; Op-Subgraph
0.92/14%/54%; Op-SubgraphApprox 0.89/16%/76%; Op-Input 0.85/18%/83%;
Operator 0.77/42%/100%; Combined 0.84/19%/100% — the accuracy-coverage
trade-off with the combined model taking the best of both.
"""

from __future__ import annotations

from repro.common.stats import median_error_pct, pearson
from repro.core.config import ModelKind
from repro.core.robustness import evaluate_predictor_on_log, evaluate_store_on_log
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "Default": {"correlation": 0.04, "median_error_pct": 258.0, "coverage_pct": 100.0},
    "op_subgraph": {"correlation": 0.92, "median_error_pct": 14.0, "coverage_pct": 54.0},
    "op_subgraph_approx": {"correlation": 0.89, "median_error_pct": 16.0, "coverage_pct": 76.0},
    "op_input": {"correlation": 0.85, "median_error_pct": 18.0, "coverage_pct": 83.0},
    "operator": {"correlation": 0.77, "median_error_pct": 42.0, "coverage_pct": 100.0},
    "combined": {"correlation": 0.84, "median_error_pct": 19.0, "coverage_pct": 100.0},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()
    test = bundle.test_log()

    rows = []
    costs, actuals = bundle.baseline_costs(DefaultCostModel())
    rows.append(
        {
            "model": "Default",
            "correlation": round(pearson(costs, actuals), 3),
            "median_error_pct": round(median_error_pct(costs, actuals), 1),
            "coverage_pct": 100.0,
            "paper": str(PAPER["Default"]),
        }
    )
    for kind, quality in evaluate_store_on_log(predictor.store, test).items():
        row = quality.row()
        row["paper"] = str(PAPER[kind.value])
        del row["n"], row["p95_error_pct"]
        rows.append(row)
    combined = evaluate_predictor_on_log(predictor, test).row()
    combined["paper"] = str(PAPER["combined"])
    del combined["n"], combined["p95_error_pct"]
    rows.append(combined)

    return ExperimentResult(
        experiment_id="tab5",
        title="Individual learned models vs default: accuracy and coverage",
        rows=rows,
        paper=PAPER,
        notes=(
            "Shape: accuracy decreases and coverage increases from subgraph "
            "to operator; combined keeps ~best accuracy at 100% coverage."
        ),
    )
