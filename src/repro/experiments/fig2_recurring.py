"""Figure 2: 150 instances of an hourly recurring job.

The paper's example job varies from ~70 TiB to ~119 TiB of input and from
41 minutes to 2.4 hours of latency across 150 instances.  We instantiate one
recurring template 150 times (hourly over ~6 days of drifting inputs) and
report the input-size and latency spread.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.workload.templates import JobSpec, instantiate

PAPER = {
    "input_gib": (69_859.0, 118_625.0),
    "latency_minutes": (40.8, 141.0),
    "instances": 150,
}


def run(scale: str = "small", seed: int = 0, instances: int = 150) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    template = bundle.generator.templates[0]
    runner = bundle.runner

    inputs_gib: list[float] = []
    latencies_min: list[float] = []
    for i in range(instances):
        # Hourly cadence: ~24 instances per day; shorter series are spread
        # over the same ~6-day drift window so the input variation the
        # figure shows is visible at any instance count.
        per_day = max(1, instances // 6)
        day = 1 + i // per_day
        job = JobSpec(
            job_id=f"{template.template_id}_hourly_{i:03d}",
            template=template,
            day=day,
            instance_seed=seed * 10_000 + i,
        )
        catalog = bundle.generator.catalog_for_day(day)
        logical = instantiate(job, catalog)
        runner._planner.jitter_salt = job.job_id
        planned = runner._planner.plan(logical)
        result = runner.simulator.run_job(
            planned.plan, job_id=job.job_id, template_id=template.template_id, day=day
        )
        inputs_gib.append(result.record.input_gib)
        latencies_min.append(result.record.latency_seconds / 60.0)

    inputs = np.asarray(inputs_gib)
    lats = np.asarray(latencies_min)
    rows = [
        {
            "metric": "total input (GiB)",
            "min": round(float(inputs.min()), 1),
            "max": round(float(inputs.max()), 1),
            "spread_x": round(float(inputs.max() / inputs.min()), 2),
        },
        {
            "metric": "latency (minutes)",
            "min": round(float(lats.min()), 1),
            "max": round(float(lats.max()), 1),
            "spread_x": round(float(lats.max() / lats.min()), 2),
        },
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title=f"{instances} instances of an hourly recurring job",
        rows=rows,
        series={"input_gib": inputs_gib, "latency_minutes": latencies_min},
        paper=PAPER,
        notes="Paper job spans 1.7x input and 3.5x latency; spreads of the same order hold here.",
    )
