"""Replan-throughput benchmark: fleet skeleton replay vs per-job planning.

Recurring jobs are the paper's core serving population (Section 6.1: the
production workloads are dominated by templates that recur daily), and
re-optimizing them in bulk — after a model-bank refresh, or nightly — is a
fleet-shaped task: thousands of instances of a few hundred templates, each
instance differing only in its numbers.  This benchmark times replanning
such a fleet with learned costs through both paths:

* **baseline** — the batched ``QueryPlanner`` loop (PR 5's fastest per-job
  configuration): every instance runs the full Cascades search with
  deferred frontier pricing, one job at a time;
* **fleet** — :func:`repro.optimizer.replan.replan_jobs`: each template
  shape is analyzed once and replayed per instance over slotted nodes
  (skeleton memoization), instances of one shape advance through the search
  in lockstep so every frontier flush prices all of them in one packed
  ``predict_inputs`` pass, and the whole fleet's plan totals are reduced in
  a single ``price_plans`` call.

The fleet is the canonical workload's test day with each job replicated
into several live instances under distinct jitter salts.  Two phases are
timed: ``structural`` (the Cascades search alone — the headline
``speedup``, the pure replanning path) and ``partitioned`` (search +
Section 5.2 partition exploration, whose per-job exploration pass is
identical code in both paths and therefore dilutes the replay's gain).
Before any timing is reported the two paths' plans are verified identical —
operator shapes, partition counts, estimated costs (exact float equality),
candidates considered — and, with the prediction cache disabled, identical
per-prediction model-lookup accounting.

Run it from the CLI (``python scripts/bench_replan.py``) to emit
``BENCH_replan.json``, or through ``benchmarks/test_replan_throughput.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.experiments.shared import get_bundle
from repro.optimizer.partition import SamplingStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.optimizer.replan import FleetReplanner, ReplanJob
from repro.workload.templates import instantiate


def _plan_fingerprint(planned) -> tuple:
    """Everything a plan-choice divergence would perturb."""
    return (
        tuple((op.op_type.value, op.partition_count) for op in planned.plan.walk()),
        planned.estimated_cost,
        planned.candidates_considered,
    )


def _fleet_jobs(bundle, instances: int) -> list[ReplanJob]:
    test_day = bundle.log.days[-1]
    catalog = bundle.generator.catalog_for_day(test_day)
    jobs: list[ReplanJob] = []
    for spec in bundle.generator.jobs_for_day(test_day):
        logical = instantiate(spec, catalog)
        for k in range(instances):
            job_id = spec.job_id if k == 0 else f"{spec.job_id}/rep{k}"
            jobs.append(
                ReplanJob(job_id, spec.template.template_id, spec.day, logical)
            )
    return jobs


def _time_baseline(planner, jobs, predictor, repeats: int):
    times: list[float] = []
    fingerprints: list[tuple] = []
    lookups = 0
    for _ in range(max(1, repeats)):
        fingerprints = []
        predictor.reset_lookup_count()
        start = time.perf_counter()
        for job in jobs:
            planner.jitter_salt = job.salt
            fingerprints.append(_plan_fingerprint(planner.plan(job.logical)))
        times.append(time.perf_counter() - start)
        lookups = predictor.lookup_count
    return times, fingerprints, lookups


def _time_fleet(replanner, jobs, predictor, repeats: int):
    times: list[float] = []
    fingerprints: list[tuple] = []
    lookups = 0
    for _ in range(max(1, repeats)):
        predictor.reset_lookup_count()
        start = time.perf_counter()
        planned = replanner.replan_jobs(jobs)
        times.append(time.perf_counter() - start)
        lookups = predictor.lookup_count
        fingerprints = [_plan_fingerprint(p) for p in planned]
    return times, fingerprints, lookups


def run_benchmark(
    scale: str = "small",
    seed: int = 0,
    repeats: int = 5,
    cluster: str = "cluster1",
    instances: int = 4,
) -> dict:
    """Time both recurring-fleet replanning paths and check plan parity.

    Returns a JSON-ready dict; the top-level ``speedup`` is best-of-
    ``repeats`` baseline time over best fleet time for the ``structural``
    phase (the pure replanning path).
    """
    bundle = get_bundle(cluster, scale=scale, seed=seed)
    predictor = bundle.predictor()
    test_day = bundle.log.days[-1]
    jobs = _fleet_jobs(bundle, instances)
    n_jobs = len(jobs)

    strategy = SamplingStrategy(scheme="geometric")
    phase_configs = {
        "structural": PlannerConfig(),
        "partitioned": PlannerConfig(partition_strategy=strategy),
    }

    phases: dict[str, dict] = {}
    all_identical = True
    all_lookups_identical = True
    for phase, config in phase_configs.items():
        baseline_planner = QueryPlanner(
            CleoCostModel(predictor), CardinalityEstimator(), config
        )
        replanner = FleetReplanner(
            CleoCostModel(predictor), CardinalityEstimator(), config
        )
        base_times, base_plans, base_lookups = _time_baseline(
            baseline_planner, jobs, predictor, repeats
        )
        fleet_times, fleet_plans, fleet_lookups = _time_fleet(
            replanner, jobs, predictor, repeats
        )
        identical = base_plans == fleet_plans
        lookups_identical = base_lookups == fleet_lookups
        all_identical = all_identical and identical
        all_lookups_identical = all_lookups_identical and lookups_identical
        base_best, fleet_best = min(base_times), min(fleet_times)
        stats = replanner.stats()
        phases[phase] = {
            "baseline": {
                "path": "batched QueryPlanner, one full search per instance",
                "seconds": [round(t, 4) for t in base_times],
                "seconds_best": round(base_best, 4),
                "plans_per_second": round(n_jobs / base_best, 1),
                "model_lookups": int(base_lookups),
            },
            "fleet": {
                "path": "skeleton replay, lockstep frontier flushes, "
                "fleet-wide price_plans finale",
                "seconds": [round(t, 4) for t in fleet_times],
                "seconds_best": round(fleet_best, 4),
                "plans_per_second": round(n_jobs / fleet_best, 1),
                "model_lookups": int(fleet_lookups),
                "skeleton_builds": stats.skeleton_builds,
                "skeleton_hits": stats.skeleton_hits,
                "frontier_flushes": stats.frontier_flushes,
            },
            "speedup": round(base_best / fleet_best, 2),
            "plans_bitwise_identical": bool(identical),
            "lookup_accounting_identical": bool(lookups_identical),
        }

    structural = phases["structural"]
    return {
        "benchmark": "replan_throughput",
        "workload": {
            "cluster": cluster,
            "scale": scale,
            "seed": seed,
            "test_day": int(test_day),
            "job_count": n_jobs,
            "instances_per_job": instances,
        },
        "models_served": predictor.store.count(),
        "planner": {
            "partition_strategy": strategy.name,
            "skip_coefficient": strategy.skip_coefficient,
            "max_partitions": PlannerConfig().max_partitions,
        },
        "prediction_cache": "disabled (exact per-prediction lookup accounting)",
        "phases": phases,
        "speedup": structural["speedup"],
        "speedup_partitioned": phases["partitioned"]["speedup"],
        "plans_per_second": structural["fleet"]["plans_per_second"],
        "plans_bitwise_identical": bool(all_identical),
        "lookup_accounting_identical": bool(all_lookups_identical),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def write_result(result: dict, path: str | Path) -> Path:
    """Write the benchmark result as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def format_result(result: dict) -> str:
    """One-paragraph human summary of a benchmark result."""
    workload = result["workload"]
    structural = result["phases"]["structural"]
    return (
        f"replan_throughput [{workload['cluster']} scale={workload['scale']} "
        f"seed={workload['seed']}]: {workload['job_count']} recurring "
        f"instances ({workload['instances_per_job']} per job, day "
        f"{workload['test_day']}, {result['models_served']} models) replanned "
        f"with learned costs; structural "
        f"{structural['baseline']['seconds_best']}s -> "
        f"{structural['fleet']['seconds_best']}s ({result['speedup']}x, "
        f"{result['plans_per_second']:.0f} plans/s; partitioned "
        f"{result['speedup_partitioned']}x), bitwise "
        f"identical={result['plans_bitwise_identical']}, lookup accounting "
        f"identical={result['lookup_accounting_identical']}"
    )
