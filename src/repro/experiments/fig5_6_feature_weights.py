"""Figures 5-6: normalized feature weights per model class.

The paper aggregates per-feature influence across all models of one class:
``nw_i = sum_n |w_in| / sum_k sum_n |w_kn|``.  Figure 5 shows the subgraph
models (weights concentrated on a few features); Figure 6 the approx /
input / operator models (progressively more spread out).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelKind
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "shape": "specialized models concentrate weight; generalized models spread it",
}


def normalized_weights(store, kind: ModelKind) -> dict[str, float]:
    """The paper's influence metric across all models of one kind."""
    totals: dict[str, float] = {}
    for model in store.models[kind].values():
        for name, weight in model.feature_weights().items():
            totals[name] = totals.get(name, 0.0) + abs(weight)
    grand = sum(totals.values()) or 1.0
    return {name: value / grand for name, value in totals.items()}


def concentration(weights: dict[str, float]) -> float:
    """Herfindahl index of the weight distribution (1 = one feature only)."""
    return float(sum(w * w for w in weights.values()))


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()

    rows = []
    series: dict[str, list] = {}
    for kind in ModelKind:
        weights = normalized_weights(predictor.store, kind)
        top = sorted(weights.items(), key=lambda kv: -kv[1])[:8]
        rows.append(
            {
                "model": kind.value,
                "models": len(predictor.store.models[kind]),
                "concentration": round(concentration(weights), 4),
                "top_features": ", ".join(f"{n}={w:.3f}" for n, w in top[:5]),
            }
        )
        names = sorted(weights)
        series[f"weights_{kind.value}"] = [round(weights[n], 5) for n in names]
        series.setdefault("feature_names", []).extend(
            n for n in names if n not in series.get("feature_names", [])
        )
    # Deduplicate feature name axis while preserving order.
    seen: set[str] = set()
    series["feature_names"] = [
        n for n in series["feature_names"] if not (n in seen or seen.add(n))
    ]
    return ExperimentResult(
        experiment_id="fig5_6",
        title="Normalized feature weights per model class",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            "Expect concentration to fall from op_subgraph to operator: the "
            "more general the model, the more evenly weights are spread."
        ),
    )
