"""Figure 20 / Section 6.6.2: the TPC-H case study.

Protocol: run all 22 queries 10 times with random parameters to build the
training log; train Cleo; re-optimize each query with learned costs and
resource-aware planning; execute both plans on the simulator.  The paper
finds 6 queries change plans (Q8, Q9, Q11, Q16, Q20 improve; Q17 regresses
via an unhelpful local aggregation), through three mechanisms: more optimal
partitioning, skipped exchanges, and different join implementations.
"""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.config import CleoConfig
from repro.core.cost_model import CleoCostModel
from repro.core.trainer import CleoTrainer
from repro.cost.default_model import DefaultCostModel
from repro.data.tpch import tpch_catalog
from repro.execution.hardware import ClusterSpec
from repro.execution.runtime_log import RunLog
from repro.execution.simulator import ExecutionSimulator
from repro.experiments.harness import ExperimentResult
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.workload.tpch_queries import TpchQuerySet

PAPER = {
    "changed_queries": ["Q8", "Q9", "Q11", "Q16", "Q17", "Q20"],
    "improved_latency_and_cpu": ["Q8", "Q9", "Q16", "Q20"],
    "improved_latency_only": ["Q11"],
    "regressed": ["Q17"],
    "scale_factor": 1000,
}


def run(
    scale: str = "small",
    seed: int = 0,
    scale_factor: float = 1000.0,
    training_runs: int = 10,
) -> ExperimentResult:
    catalog = tpch_catalog(scale_factor)
    cluster = ClusterSpec(name="tpch")
    simulator = ExecutionSimulator(cluster, seed=seed)
    estimator = CardinalityEstimator()
    queries = TpchQuerySet(catalog, seed=seed)

    default_planner = QueryPlanner(
        DefaultCostModel(), estimator, PlannerConfig(partition_jitter=0.35)
    )

    # Training phase: 10 randomized runs of the full suite on the default plans.
    log = RunLog()
    for run_idx in range(training_runs):
        for query in queries.all_queries(run=run_idx):
            default_planner.jitter_salt = f"tpch_r{run_idx}_q{query.query_id}"
            planned = default_planner.plan(query.plan)
            result = simulator.run_job(
                planned.plan,
                job_id=f"q{query.query_id}_r{run_idx}",
                template_id=f"q{query.query_id}",
                day=1 + run_idx % 2,
                estimator=estimator,
            )
            log.append(result.record)

    predictor = CleoTrainer(CleoConfig(seed=seed)).train(
        log, individual_days=[1], combined_days=[2]
    )
    cleo_planner = QueryPlanner(
        CleoCostModel(predictor),
        estimator,
        PlannerConfig(partition_strategy=AnalyticalStrategy()),
    )

    rows = []
    changed = []
    series: dict[str, list] = {"query": [], "latency_improvement_pct": [], "cpu_improvement_pct": []}
    for query in queries.all_queries(run=training_runs + 1):
        default_planner.jitter_salt = f"tpch_eval_q{query.query_id}"
        p0 = default_planner.plan(query.plan).plan
        p1 = cleo_planner.plan(query.plan).plan
        structure_changed = [o.op_type.value for o in p0.walk()] != [
            o.op_type.value for o in p1.walk()
        ]
        partitions_changed = [o.partition_count for o in p0.walk()] != [
            o.partition_count for o in p1.walk()
        ]
        if not (structure_changed or partitions_changed):
            continue
        changed.append(f"Q{query.query_id}")
        l0, l1 = simulator.expected_job_latency(p0), simulator.expected_job_latency(p1)
        c0, c1 = simulator.expected_cpu_seconds(p0), simulator.expected_cpu_seconds(p1)
        lat_impr = 100.0 * (l0 - l1) / l0
        cpu_impr = 100.0 * (c0 - c1) / c0
        rows.append(
            {
                "query": f"Q{query.query_id}",
                "change": "operators" if structure_changed else "partitions",
                "latency_improvement_pct": round(lat_impr, 1),
                "processing_time_improvement_pct": round(cpu_impr, 1),
            }
        )
        series["query"].append(f"Q{query.query_id}")
        series["latency_improvement_pct"].append(round(lat_impr, 1))
        series["cpu_improvement_pct"].append(round(cpu_impr, 1))

    improved = sum(1 for r in rows if r["latency_improvement_pct"] > 0)
    rows.append(
        {
            "query": "summary",
            "change": f"{len(changed)} changed",
            "latency_improvement_pct": f"{improved}/{len(rows)} improved",
            "processing_time_improvement_pct": "-",
        }
    )
    return ExperimentResult(
        experiment_id="fig20",
        title=f"TPC-H SF{scale_factor:g}: plan changes under Cleo",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            "Shape: several queries change plans; most improve latency and "
            "processing time; occasional regression is expected (paper: Q17)."
        ),
    )
