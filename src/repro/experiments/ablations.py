"""Ablations of the paper's and the reproduction's design choices.

Three studies isolate engineering decisions the calibration process
surfaced (DESIGN.md §6):

* **allocation jitter** — without within-template partition-count variation
  in the training logs, the learned resource profiles lose their P signal;
* **non-negative partition weights** — without the sign constraint, raw
  extrapolation to unseen partition counts produces degenerate (negative)
  resource profiles;
* **cloud noise sensitivity** — how the combined model's accuracy degrades
  as execution variance grows (the paper's motivation for the MSLE loss).

Three more probe design choices the paper itself calls out:

* **training window / frequency** — Section 5.1 fixes "a training window of
  two days and a training frequency of every ten days" empirically; the
  sweep replays a multi-day log through
  :class:`~repro.core.lifecycle.LifecycleManager` under different policies;
* **combined-model inputs** — Section 4.3 adds cardinality/partition extras
  to the meta-features and reports that also including the default cost
  model "did not result in any improvement"; the ablation measures both;
* **specialization spectrum** — Section 3's "no one-size-fits-all" claim:
  one global model versus per-operator models versus the full collection.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CleoConfig
from repro.core.robustness import evaluate_predictor_on_log
from repro.core.trainer import CleoTrainer
from repro.execution.hardware import ClusterSpec
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import workload_config
from repro.features.extract import feature_input_for
from repro.optimizer.planner import PlannerConfig
from repro.plan.signatures import SignatureBundle
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadRunner


def _run_workload(scale: str, seed: int, jitter: float, noise_sigma: float = 0.10):
    config = workload_config("cluster1", scale, seed)
    generator = WorkloadGenerator(config)
    runner = WorkloadRunner(
        cluster=ClusterSpec(name="cluster1", noise_sigma=noise_sigma),
        seed=seed,
        planner_config=PlannerConfig(partition_jitter=jitter),
        keep_plans=True,
    )
    log = runner.run_days(generator, [1, 2, 3])
    return generator, runner, log


def _profile_degeneracy(predictor, log, runner) -> float:
    """Fraction of covered operators with a degenerate resource profile."""
    from repro.cardinality.estimator import CardinalityEstimator

    estimator = CardinalityEstimator(runner.estimator_config)
    degenerate = 0
    covered = 0
    for job in log.filter(days=[3]).jobs[:40]:
        plan = runner.plans[job.job_id]
        estimator.reset()
        for op in plan.walk():
            found = predictor.store.most_specific(SignatureBundle.of(op))
            if found is None:
                continue
            covered += 1
            profile = found[1].resource_profile(feature_input_for(op, estimator))
            if profile.theta_p < 0 or profile.theta_c < 0:
                degenerate += 1
    return degenerate / max(covered, 1)


def run_jitter_ablation(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """Partition-count diversity in the logs vs learned P-sensitivity."""
    rows = []
    for jitter in (0.0, 0.35):
        generator, runner, log = _run_workload(scale, seed, jitter)
        predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])

        # How often does the learned stage optimum differ from "keep P"?
        # Without training-time P variation, theta_c collapses to ~0 and the
        # profiles cannot justify any change.
        moved = 0
        total = 0
        from repro.cardinality.estimator import CardinalityEstimator

        estimator = CardinalityEstimator(runner.estimator_config)
        for job in log.filter(days=[3]).jobs[:40]:
            plan = runner.plans[job.job_id]
            estimator.reset()
            for op in plan.walk():
                found = predictor.store.most_specific(SignatureBundle.of(op))
                if found is None:
                    continue
                profile = found[1].resource_profile(feature_input_for(op, estimator))
                total += 1
                optimum = profile.optimal_partitions(3000)
                if abs(optimum - op.partition_count) > max(2, 0.25 * op.partition_count):
                    moved += 1
        rows.append(
            {
                "training_jitter": jitter,
                "profiles_with_p_signal_pct": round(100.0 * moved / max(total, 1), 1),
                "theta_c_zero_pct": round(
                    100.0 * _theta_c_zero_fraction(predictor), 1
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_jitter",
        title="Ablation: allocation jitter in training logs",
        rows=rows,
        notes="Without jitter, theta_c degenerates to ~0 for most models.",
    )


def _theta_c_zero_fraction(predictor) -> float:
    zero = 0
    total = 0
    for by_sig in predictor.store.models.values():
        for model in by_sig.values():
            weights = model.feature_weights()
            total += 1
            if abs(weights.get("P", 0.0)) < 1e-12:
                zero += 1
    return zero / max(total, 1)


def run_nonneg_ablation(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """Sign constraint on partition weights vs degenerate profiles."""
    generator, runner, log = _run_workload(scale, seed, jitter=0.35)
    rows = []
    for constrained in (True, False):
        config = CleoConfig(constrain_partition_weights=constrained)
        predictor = CleoTrainer(config).train(
            log, individual_days=[1, 2], combined_days=[2]
        )
        quality = evaluate_predictor_on_log(predictor, log.filter(days=[3]))
        rows.append(
            {
                "constrained": constrained,
                "degenerate_profile_pct": round(
                    100.0 * _profile_degeneracy(predictor, log, runner), 1
                ),
                "combined_median_error_pct": round(quality.median_error_pct, 1),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_nonneg",
        title="Ablation: non-negative partition-weight constraint",
        rows=rows,
        notes=(
            "The constraint should eliminate degenerate profiles at little "
            "to no accuracy cost."
        ),
    )


def run_noise_sensitivity(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """Combined-model accuracy as cloud execution variance grows."""
    rows = []
    for noise in (0.0, 0.1, 0.25, 0.5):
        generator, runner, log = _run_workload(scale, seed, 0.35, noise_sigma=noise)
        predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
        quality = evaluate_predictor_on_log(predictor, log.filter(days=[3]))
        rows.append(
            {
                "noise_sigma": noise,
                "combined_median_error_pct": round(quality.median_error_pct, 1),
                "combined_pearson": round(quality.pearson, 3),
            }
        )
    errors = [row["combined_median_error_pct"] for row in rows]
    return ExperimentResult(
        experiment_id="ablation_noise",
        title="Ablation: execution-noise sensitivity of the learned models",
        rows=rows,
        series={"noise_sigma": [r["noise_sigma"] for r in rows], "median_error": errors},
        notes="Error should grow smoothly with variance, not cliff.",
    )


# --------------------------------------------------------------------- #
# Paper-called-out design choices
# --------------------------------------------------------------------- #


def run_window_ablation(
    scale: str = "tiny",
    seed: int = 0,
    horizon_days: int = 15,
    policies: tuple[tuple[int, int], ...] = ((1, 5), (2, 2), (2, 5), (2, 10), (4, 10)),
) -> ExperimentResult:
    """Training window x retrain frequency sweep (Section 5.1's 2d/10d).

    Replays ``horizon_days`` of one cluster's log under each
    ``(window_days, frequency_days)`` policy and reports the mean daily
    median error, the worst day, and how many retrains the policy paid for.
    """
    from repro.core.lifecycle import LifecycleManager, RetrainPolicy
    from repro.experiments.shared import get_bundle

    bundle = get_bundle(
        "cluster1", scale=scale, days=tuple(range(1, horizon_days + 1)), seed=seed
    )
    # Score every policy on the same days (those after the widest window),
    # so a narrow window cannot look worse merely by being scored earlier.
    widest = max(window for window, _ in policies)
    score_days = bundle.log.days[widest:]
    rows = []
    for window_days, frequency_days in policies:
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=window_days,
                frequency_days=frequency_days,
                regression_factor=None,
            )
        )
        outcomes = manager.run(bundle.log, days=score_days)
        errors = [o.median_error_pct for o in outcomes]
        rows.append(
            {
                "window_days": window_days,
                "frequency_days": frequency_days,
                "mean_median_error_pct": round(float(np.mean(errors)), 1),
                "worst_day_error_pct": round(float(np.max(errors)), 1),
                "mean_pearson": round(
                    float(np.mean([o.pearson for o in outcomes])), 3
                ),
                "retrains": sum(o.retrained for o in outcomes),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_window",
        title="Ablation: training window and retrain frequency (Section 5.1)",
        rows=rows,
        paper={"chosen_policy": "window 2 days, frequency 10 days"},
        notes=(
            "The paper's 2d/10d policy should sit near the accuracy of the "
            "most aggressive policies at a fraction of the retrains."
        ),
    )


def run_meta_ablation(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """Combined-model input ablation (Section 4.3).

    Variants share the same individual-model store and FastTree
    hyperparameters; only the meta-feature columns differ:

    * predictions + coverage flags only;
    * the paper's layout (plus cardinality/partition extras);
    * the paper's layout plus the default cost model's estimate — which the
      paper reports "did not result in any improvement".
    """
    from repro.common.stats import median_error_pct, pearson as pearson_of
    from repro.core.combined import META_FEATURE_NAMES, build_meta_row
    from repro.cost.default_model import DefaultCostModel
    from repro.experiments.shared import get_bundle
    from repro.ml.gbm import FastTreeRegressor

    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    store = bundle.predictor().store

    def day_matrix(day: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        records = list(bundle.log.filter(days=[day]).operator_records())
        rows_ = np.vstack(
            [build_meta_row(store, r.features, r.signatures) for r in records]
        )
        actual = np.asarray([r.actual_latency for r in records])
        default_costs, _ = bundle.baseline_costs(DefaultCostModel(), days=(day,))
        return rows_, actual, np.asarray(default_costs)

    train_rows, train_actual, train_default = day_matrix(2)
    test_rows, test_actual, test_default = day_matrix(3)

    n_pred_cols = 8  # 4 predictions + 4 coverage flags
    variants: list[tuple[str, np.ndarray, np.ndarray]] = [
        ("predictions_only", train_rows[:, :n_pred_cols], test_rows[:, :n_pred_cols]),
        ("paper (pred + extras)", train_rows, test_rows),
        (
            "paper + default cost",
            np.column_stack([train_rows, train_default]),
            np.column_stack([test_rows, test_default]),
        ),
    ]
    config = CleoConfig()
    rows = []
    for name, train_x, test_x in variants:
        regressor = FastTreeRegressor(
            n_estimators=config.meta_trees,
            max_depth=config.meta_depth,
            subsample=config.meta_subsample,
            learning_rate=config.meta_learning_rate,
            log_target=True,
            seed=config.seed,
        )
        regressor.fit(train_x, train_actual)
        predicted = np.clip(np.asarray(regressor.predict(test_x)), 0.0, None)
        rows.append(
            {
                "meta_features": name,
                "n_columns": train_x.shape[1],
                "median_error_pct": round(median_error_pct(predicted, test_actual), 1),
                "pearson": round(pearson_of(predicted, test_actual), 3),
            }
        )
    return ExperimentResult(
        experiment_id="ablation_meta",
        title="Ablation: combined-model meta-features (Section 4.3)",
        rows=rows,
        paper={
            "extras": "cardinalities, per-partition cardinalities, partitions",
            "default_cost_feature": "no improvement on SCOPE",
        },
        notes=(
            f"Column layout: {', '.join(META_FEATURE_NAMES)}; the default-cost "
            "column should not materially improve on the paper layout."
        ),
    )


def run_specialization_ablation(scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    """One global model vs per-operator vs the full collection (Section 3).

    The global variants fit a single model over *all* operator records with
    the full feature set (context features included): one elastic net (as
    specialized models use) and one FastTree (giving the global approach
    the benefit of a higher-capacity learner).  Neither reaches the
    specialized collection — the paper's no-one-size-fits-all argument.
    """
    from repro.common.stats import median_error_pct, pearson as pearson_of
    from repro.core.config import ModelKind
    from repro.core.learned_model import LearnedCostModel
    from repro.core.robustness import evaluate_store_on_log
    from repro.experiments.shared import get_bundle
    from repro.features.featurizer import feature_matrix
    from repro.ml.gbm import FastTreeRegressor

    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()
    train_records = list(bundle.log.filter(days=[1, 2]).operator_records())
    test_records = list(bundle.log.filter(days=[3]).operator_records())
    test_actual = np.asarray([r.actual_latency for r in test_records])

    rows = []

    def add_row(name: str, predicted: np.ndarray, coverage_pct: float) -> None:
        rows.append(
            {
                "model": name,
                "median_error_pct": round(median_error_pct(predicted, test_actual), 1),
                "pearson": round(pearson_of(predicted, test_actual), 3),
                "coverage_pct": round(coverage_pct, 1),
                "n_models": 1 if name.startswith("global") else None,
            }
        )

    # Global elastic net: the same learner the specialized models use.
    global_net = LearnedCostModel(include_context=True)
    global_net.fit(
        [r.features for r in train_records],
        np.asarray([r.actual_latency for r in train_records]),
    )
    add_row(
        "global elastic net",
        global_net.predict_many([r.features for r in test_records]),
        100.0,
    )

    # Global FastTree: higher capacity, same single-model constraint.
    train_x = feature_matrix([r.features for r in train_records], include_context=True)
    test_x = feature_matrix([r.features for r in test_records], include_context=True)
    config = CleoConfig()
    global_tree = FastTreeRegressor(
        n_estimators=config.meta_trees,
        max_depth=config.meta_depth,
        subsample=config.meta_subsample,
        learning_rate=config.meta_learning_rate,
        log_target=True,
        seed=config.seed,
    )
    global_tree.fit(train_x, np.asarray([r.actual_latency for r in train_records]))
    add_row(
        "global fasttree",
        np.clip(np.asarray(global_tree.predict(test_x)), 0.0, None),
        100.0,
    )

    # Per-operator and full-collection numbers from the trained store.
    per_kind = evaluate_store_on_log(
        predictor.store, bundle.log.filter(days=[3]), kinds=(ModelKind.OPERATOR,)
    )
    operator_quality = per_kind[ModelKind.OPERATOR]
    rows.append(
        {
            "model": "per-operator collection",
            "median_error_pct": round(operator_quality.median_error_pct, 1),
            "pearson": round(operator_quality.pearson, 3),
            "coverage_pct": round(operator_quality.coverage_pct, 1),
            "n_models": predictor.store.count(ModelKind.OPERATOR),
        }
    )
    combined_predicted = predictor.predict_records(
        test_records, table=bundle.test_table()
    )
    rows.append(
        {
            "model": "full collection + combined",
            "median_error_pct": round(median_error_pct(combined_predicted, test_actual), 1),
            "pearson": round(pearson_of(combined_predicted, test_actual), 3),
            "coverage_pct": 100.0,
            "n_models": predictor.store.count(),
        }
    )
    return ExperimentResult(
        experiment_id="ablation_global",
        title="Ablation: specialization spectrum (no one-size-fits-all)",
        rows=rows,
        paper={"claim": "a single global model cannot match specialized collections"},
        notes=(
            "Both single global models should trail the per-operator "
            "collection, which trails the full Cleo collection."
        ),
    )
