"""Figures 12-13: accuracy CDFs per cluster, all jobs and ad-hoc only.

Train on days 1-2, test on day 3, per cluster: CDFs of estimated/actual for
each learned model and the default model.  Figure 12 covers all jobs;
Figure 13 restricts to ad-hoc jobs, where coverage drops but accuracy stays
close (ad-hoc jobs still share subexpressions, and the operator/combined
models capture system behaviour regardless of recurrence).
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import Cdf, error_ratio
from repro.core.config import ModelKind
from repro.core.robustness import store_predictions_by_kind
from repro.cost.default_model import DefaultCostModel
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_all_cluster_bundles

PAPER = {
    "shape": (
        "learned CDFs hug ratio=1 on every cluster; default spans 1e-2..1e3; "
        "ad-hoc accuracy slightly below all-jobs accuracy"
    )
}


def run(scale: str = "small", seed: int = 0, adhoc_only: bool = False) -> ExperimentResult:
    bundles = get_all_cluster_bundles(scale=scale, seed=seed)
    rows = []
    series: dict[str, list] = {"cdf_grid": list(Cdf.of([1.0]).grid)}

    for name, bundle in bundles.items():
        predictor = bundle.predictor()
        test = bundle.test_log()
        if adhoc_only:
            test = test.filter(adhoc=True)
        records = list(test.operator_records())
        if not records:
            continue
        table = test.to_table()
        actuals = table.latency

        # Columnar path: one grouped vectorized prediction pass per kind
        # instead of a per-record model lookup + predict loop.
        by_kind = store_predictions_by_kind(predictor.store, test)
        for kind in ModelKind:
            mask, predictions = by_kind[kind]
            if mask.any():
                ratios = error_ratio(predictions[mask], actuals[mask])
                series[f"cdf_{name}_{kind.value}"] = list(Cdf.of(ratios).fractions)
                rows.append(
                    {
                        "cluster": name,
                        "model": kind.value,
                        "central_mass_0.5_2x": round(Cdf.of(ratios).central_mass(), 3),
                        "coverage_pct": round(100.0 * int(mask.sum()) / len(records), 1),
                    }
                )

        combined = predictor.predict_records(records, table=table)
        ratios = error_ratio(combined, actuals)
        series[f"cdf_{name}_combined"] = list(Cdf.of(ratios).fractions)
        rows.append(
            {
                "cluster": name,
                "model": "combined",
                "central_mass_0.5_2x": round(Cdf.of(ratios).central_mass(), 3),
                "coverage_pct": 100.0,
            }
        )

        estimator = bundle.fresh_estimator()
        model = DefaultCostModel()
        default_costs, default_acts = [], []
        for job in test:
            plan = bundle.runner.plans[job.job_id]
            estimator.reset()
            for op, record in zip(plan.walk(), job.operators):
                default_costs.append(model.operator_cost(op, estimator))
                default_acts.append(record.actual_latency)
        ratios = error_ratio(np.array(default_costs), np.array(default_acts))
        series[f"cdf_{name}_default"] = list(Cdf.of(ratios).fractions)
        rows.append(
            {
                "cluster": name,
                "model": "default",
                "central_mass_0.5_2x": round(Cdf.of(ratios).central_mass(), 3),
                "coverage_pct": 100.0,
            }
        )

    which = "fig13" if adhoc_only else "fig12"
    return ExperimentResult(
        experiment_id=which,
        title=(
            "Accuracy CDFs on "
            + ("ad-hoc jobs only" if adhoc_only else "all jobs")
            + " across four clusters"
        ),
        rows=rows,
        series=series,
        paper=PAPER,
    )
