"""Figure 14: robustness — coverage, error, correlation over a month.

Train the individual models on two days (plus the next day for the combined
model), then evaluate on test windows ending 2/7/14/21/28 days out.  Paper
shape: subgraph coverage decays (58% -> 37%), operator/combined stay at
100%; median error of learned models stays 3-15x better than default with
graceful degradation; correlation stays in 0.70-0.96 all month; the paper
concludes retraining every ~10 days suffices.
"""

from __future__ import annotations

from repro.core.config import ModelKind
from repro.core.robustness import evaluate_predictor_on_log, evaluate_store_on_log
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle

PAPER = {
    "subgraph_coverage_day2_to_28": (58.0, 37.0),
    "approx_coverage_range": (75.0, 60.0),
    "input_coverage_range": (78.0, 84.0),
    "correlation_band": (0.70, 0.96),
}

WINDOWS = (2, 7, 14, 21, 28)


def run(scale: str = "small", seed: int = 0, windows: tuple[int, ...] = WINDOWS) -> ExperimentResult:
    horizon = max(windows) + 3
    bundle = get_bundle("cluster1", scale=scale, days=tuple(range(1, horizon + 1)), seed=seed)
    predictor = bundle.predictor(train_days=(1, 2), combined_days=(3,))

    rows = []
    series: dict[str, list] = {"window_days": list(windows)}
    for window in windows:
        test_day = 3 + window
        test = bundle.log.filter(days=[test_day])
        if not len(test):
            continue
        for kind, quality in evaluate_store_on_log(predictor.store, test).items():
            rows.append({"window_days": window, **quality.row()})
            series.setdefault(f"coverage_{kind.value}", []).append(
                round(quality.coverage_pct, 1)
            )
            series.setdefault(f"median_error_{kind.value}", []).append(
                round(quality.median_error_pct, 1)
            )
            series.setdefault(f"pearson_{kind.value}", []).append(round(quality.pearson, 3))
        combined = evaluate_predictor_on_log(predictor, test)
        rows.append({"window_days": window, **combined.row()})
        for metric, value in (
            ("coverage_combined", round(combined.coverage_pct, 1)),
            ("median_error_combined", round(combined.median_error_pct, 1)),
            ("p95_error_combined", round(combined.p95_error_pct, 1)),
            ("pearson_combined", round(combined.pearson, 3)),
        ):
            series.setdefault(metric, []).append(value)

    return ExperimentResult(
        experiment_id="fig14",
        title="Robustness over a month: coverage / error / correlation vs test window",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            "Expect specialized-model coverage to decay with the window while "
            "combined stays at 100% with gracefully degrading accuracy."
        ),
    )
