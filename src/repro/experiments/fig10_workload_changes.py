"""Figure 10: day-over-day workload change per cluster.

The paper shows total jobs / recurring jobs / recurring templates changing
by -30% to +20% between consecutive days, per cluster — the drift that makes
model retention (Figure 14) a real requirement.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_all_cluster_bundles

PAPER = {"change_pct_range": (-30.0, 20.0)}


def _pct_change(old: float, new: float) -> float:
    if old == 0:
        return float("nan")
    return 100.0 * (new - old) / old


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundles = get_all_cluster_bundles(scale=scale, seed=seed)
    rows = []
    for name, bundle in bundles.items():
        days = bundle.log.days
        stats_by_day = {}
        for day in days:
            day_log = bundle.log.filter(days=[day])
            recurring = day_log.filter(adhoc=False)
            stats_by_day[day] = {
                "total_jobs": len(day_log),
                "recurring_jobs": len(recurring),
                "recurring_templates": len({j.template_id for j in recurring}),
                "input_gib": sum(j.input_gib for j in day_log),
            }
        for prev, curr in zip(days, days[1:]):
            rows.append(
                {
                    "cluster": name,
                    "transition": f"day{prev}-to-day{curr}",
                    "total_jobs_pct": round(
                        _pct_change(
                            stats_by_day[prev]["total_jobs"], stats_by_day[curr]["total_jobs"]
                        ),
                        1,
                    ),
                    "recurring_jobs_pct": round(
                        _pct_change(
                            stats_by_day[prev]["recurring_jobs"],
                            stats_by_day[curr]["recurring_jobs"],
                        ),
                        1,
                    ),
                    "input_volume_pct": round(
                        _pct_change(
                            stats_by_day[prev]["input_gib"], stats_by_day[curr]["input_gib"]
                        ),
                        1,
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="fig10",
        title="Day-over-day workload change per cluster",
        rows=rows,
        paper=PAPER,
        notes="Expect double-digit percentage swings in volume between days.",
    )
