"""Table 4: ML algorithms for the operator-subgraph model (5-fold CV).

The paper's result: every learner beats the default model by a wide margin;
elastic net wins with 0.92 correlation / 14% median error, and the complex
models (neural network, ensembles) overfit the small per-template samples.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import median_error_pct, pearson, relative_error_pct
from repro.core.config import ModelKind
from repro.core.model_store import signature_for
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.features.featurizer import feature_matrix
from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import FastTreeRegressor
from repro.ml.mlp import MLPRegressor
from repro.ml.model_selection import KFold
from repro.ml.proximal import ElasticNetMSLE
from repro.ml.tree import DecisionTreeRegressor

PAPER = {
    "Default": {"correlation": 0.04, "median_error_pct": 258.0},
    "Neural Network": {"correlation": 0.89, "median_error_pct": 27.0},
    "Decision Tree": {"correlation": 0.91, "median_error_pct": 19.0},
    "FastTree Regression": {"correlation": 0.90, "median_error_pct": 20.0},
    "Random Forest": {"correlation": 0.89, "median_error_pct": 32.0},
    "Elastic net": {"correlation": 0.92, "median_error_pct": 14.0},
}

_MIN_SAMPLES = 10
_MAX_TEMPLATES = 80


def model_factories(seed: int = 0):
    """The paper's five learners with its stated hyperparameters."""
    return {
        "Neural Network": lambda: MLPRegressor(hidden_size=30, l2=0.005, epochs=150, seed=seed),
        "Decision Tree": lambda: _LogTarget(DecisionTreeRegressor(max_depth=15)),
        "FastTree Regression": lambda: FastTreeRegressor(
            n_estimators=20, max_depth=5, subsample=0.9, seed=seed
        ),
        "Random Forest": lambda: _LogTarget(
            RandomForestRegressor(n_estimators=20, max_depth=5, seed=seed)
        ),
        "Elastic net": lambda: ElasticNetMSLE(alpha=0.01, l1_ratio=0.5),
    }


class _LogTarget:
    """Fit any regressor in log space (the MSLE convention)."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def fit(self, features, targets):
        self.inner.fit(features, np.log1p(np.clip(targets, 0, None)))
        return self

    def predict(self, features):
        return np.expm1(np.clip(self.inner.predict(features), None, 60.0))


def cross_validate_subgraph_models(
    log, model_factory, kind: ModelKind = ModelKind.OP_SUBGRAPH,
    min_samples: int = _MIN_SAMPLES, max_templates: int = _MAX_TEMPLATES, seed: int = 0,
):
    """Pooled out-of-fold (prediction, actual) pairs across templates."""
    groups: dict[int, tuple[list, list]] = {}
    for record in log.operator_records():
        sig = signature_for(kind, record.signatures)
        bucket = groups.setdefault(sig, ([], []))
        bucket[0].append(record.features)
        bucket[1].append(record.actual_latency)

    include_context = kind.uses_context_features
    predictions: list[float] = []
    actuals: list[float] = []
    used = 0
    for inputs, targets in groups.values():
        if len(targets) < min_samples:
            continue
        if used >= max_templates:
            break
        used += 1
        matrix = feature_matrix(inputs, include_context=include_context)
        y = np.asarray(targets)
        fold_preds = np.empty(len(y))
        for train_idx, test_idx in KFold(n_splits=min(5, len(y)), seed=seed).split(len(y)):
            model = model_factory()
            model.fit(matrix[train_idx], y[train_idx])
            fold_preds[test_idx] = np.clip(model.predict(matrix[test_idx]), 0, None)
        predictions.extend(fold_preds.tolist())
        actuals.extend(y.tolist())
    return np.asarray(predictions), np.asarray(actuals)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    rows = []

    # Default cost model baseline over the same workload.
    from repro.cost.default_model import DefaultCostModel

    costs, actuals = bundle.baseline_costs(DefaultCostModel(), days=tuple(bundle.log.days))
    rows.append(
        {
            "model": "Default",
            "correlation": round(pearson(costs, actuals), 3),
            "median_error_pct": round(median_error_pct(costs, actuals), 1),
            "paper_corr": PAPER["Default"]["correlation"],
            "paper_err": PAPER["Default"]["median_error_pct"],
        }
    )

    for name, factory in model_factories(seed).items():
        preds, acts = cross_validate_subgraph_models(bundle.log, factory, seed=seed)
        rows.append(
            {
                "model": name,
                "correlation": round(pearson(preds, acts), 3),
                "median_error_pct": round(float(np.median(relative_error_pct(preds, acts))), 1),
                "paper_corr": PAPER[name]["correlation"],
                "paper_err": PAPER[name]["median_error_pct"],
            }
        )

    return ExperimentResult(
        experiment_id="tab4",
        title="ML algorithms on the operator-subgraph model (5-fold CV)",
        rows=rows,
        paper=PAPER,
        notes="Every learner should beat Default by an order of magnitude; simple models win.",
    )
