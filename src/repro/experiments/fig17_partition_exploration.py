"""Figure 17: partition-exploration accuracy vs efficiency.

Protocol from Section 6.5: over ~200 subexpression stages, probe the learned
models for every partition count up to the cluster maximum to find the
learned-optimal stage cost; then compare how close each strategy gets:
random / uniform / geometric sampling at varying sample counts, and the
single-shot analytical approach.  Paper findings: the analytical model beats
sampling until ~15-20 samples, and geometric sampling beats uniform/random
at small budgets — making the analytical approach ~20x more efficient for
equal accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ModelKind
from repro.experiments.harness import ExperimentResult
from repro.experiments.shared import get_bundle
from repro.features.extract import feature_input_for
from repro.features.featurizer import feature_matrix
from repro.optimizer.partition import ResourceContext
from repro.plan.stages import build_stage_graph

PAPER = {
    "analytical_beats_sampling_until_samples": (15, 20),
    "geometric_best_sampler_at": (4, 20),
    "efficiency_factor": 20,
}

MAX_P = 3000
SAMPLE_COUNTS = (2, 4, 8, 16, 32, 64, 128)


def _stage_cost_curves(predictor, stage_ops, estimator, max_p: int) -> np.ndarray | None:
    """Predicted stage cost for every partition count in [1, max_p].

    Uses each operator's most specific individual model (the same models the
    analytical strategy reads), vectorized over the full P sweep.
    """
    partitions = np.arange(1, max_p + 1)
    total = np.zeros(max_p)
    from repro.plan.signatures import SignatureBundle

    any_model = False
    for op in stage_ops:
        bundle = SignatureBundle.of(op)
        found = predictor.store.most_specific(bundle)
        if found is None:
            continue
        any_model = True
        _, model = found
        base = feature_input_for(op, estimator)
        inputs = [base.with_partition_count(float(p)) for p in partitions]
        total += model.predict_many(inputs)
    return total if any_model else None


def _geometric_skip_for(n_samples: int, max_p: int) -> float:
    """Skip coefficient that yields roughly ``n_samples`` geometric samples."""
    ratio = max_p ** (1.0 / max(n_samples, 2))
    return 1.0 / max(ratio - 1.0, 1e-6)


def _candidates(scheme: str, n: int, max_p: int, rng: np.random.Generator) -> list[int]:
    if scheme == "geometric":
        from repro.common.stats import geometric_partition_samples

        return geometric_partition_samples(max_p, _geometric_skip_for(n, max_p))[:n]
    if scheme == "uniform":
        return sorted({int(round(x)) for x in np.linspace(1, max_p, num=n)})
    return sorted({1, *(int(x) for x in rng.integers(1, max_p + 1, size=n))})


def run(scale: str = "small", seed: int = 0, n_stages: int = 200) -> ExperimentResult:
    bundle = get_bundle("cluster1", scale=scale, seed=seed)
    predictor = bundle.predictor()
    estimator = bundle.fresh_estimator()
    rng = np.random.default_rng(seed)

    # Collect candidate stages from executed plans.
    curves: list[np.ndarray] = []
    contexts: list[ResourceContext] = []
    from repro.plan.signatures import SignatureBundle

    for job in bundle.test_log():
        plan = bundle.runner.plans[job.job_id]
        estimator.reset()
        graph = build_stage_graph(plan)
        for stage in graph.stages:
            if len(curves) >= n_stages:
                break
            curve = _stage_cost_curves(predictor, stage.operators, estimator, MAX_P)
            if curve is None:
                continue
            context = ResourceContext()
            for op in stage.operators:
                found = predictor.store.most_specific(SignatureBundle.of(op))
                if found is not None:
                    context.attach(found[1].resource_profile(feature_input_for(op, estimator)))
            curves.append(curve)
            contexts.append(context)
        if len(curves) >= n_stages:
            break

    optima = np.array([c.min() for c in curves])
    rows = []
    series: dict[str, list] = {"sample_counts": list(SAMPLE_COUNTS)}
    for scheme in ("random", "uniform", "geometric"):
        medians = []
        for n in SAMPLE_COUNTS:
            errors = []
            for curve, best in zip(curves, optima):
                cand = _candidates(scheme, n, MAX_P, rng)
                chosen = min(cand, key=lambda p: curve[p - 1])
                errors.append(100.0 * (curve[chosen - 1] - best) / max(best, 1e-9))
            medians.append(round(float(np.median(errors)), 2))
        series[f"median_error_{scheme}"] = medians
        rows.append({"strategy": scheme, **{f"n={n}": m for n, m in zip(SAMPLE_COUNTS, medians)}})

    analytical_errors = []
    for curve, context, best in zip(curves, contexts, optima):
        chosen = context.optimal_partitions(MAX_P)
        analytical_errors.append(100.0 * (curve[chosen - 1] - best) / max(best, 1e-9))
    analytical_median = round(float(np.median(analytical_errors)), 2)
    series["median_error_analytical"] = [analytical_median] * len(SAMPLE_COUNTS)
    rows.append(
        {"strategy": "analytical", **{f"n={n}": analytical_median for n in SAMPLE_COUNTS}}
    )

    return ExperimentResult(
        experiment_id="fig17",
        title="Partition exploration: median cost gap vs the learned optimum",
        rows=rows,
        series=series,
        paper=PAPER,
        notes=(
            f"{len(curves)} stages probed exhaustively to P={MAX_P}. Analytical "
            "uses 1 profile read per operator; samplers use n probes."
        ),
    )
