"""The default cardinality estimator, with compounding per-operator errors.

Design: the estimator knows each operator's *estimated* local selectivity,
which differs from the true one by a multiplicative error factor drawn
log-normally — deterministically per operator template, so the same recurring
subexpression is always misestimated the same way.  That determinism is what
makes the errors *learnable* by Cleo's subgraph models ("when the estimation
errors are systematically off by certain factors, the subgraph models can
adjust the weights", Section 3.1) while still wrecking the default cost
model, whose hand-tuned constants cannot absorb per-template factors.

Error magnitude grows with operator kind: filters are mildly off, joins more,
and user-defined Process operators (black-box UDFs) most of all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.hashing import stable_unit_float
from repro.plan.logical import LogicalOpType
from repro.plan.physical import PhysicalOp

#: Log-space error sigma per logical operator type.
DEFAULT_SIGMAS: dict[LogicalOpType, float] = {
    LogicalOpType.GET: 0.0,
    LogicalOpType.FILTER: 0.55,
    LogicalOpType.PROJECT: 0.0,
    LogicalOpType.PROCESS: 1.2,
    LogicalOpType.JOIN: 0.9,
    LogicalOpType.AGGREGATE: 0.7,
    LogicalOpType.SORT: 0.0,
    LogicalOpType.TOP_K: 0.0,
    LogicalOpType.UNION: 0.0,
    LogicalOpType.OUTPUT: 0.0,
}



@dataclass(frozen=True)
class EstimatorConfig:
    """Tuning knobs for the default estimator.

    Attributes:
        sigma_scale: global multiplier on the per-operator error sigmas
            (0 disables errors entirely).
        sigmas: per-operator-type log-space sigmas.
        seed_salt: varies the deterministic error draws (e.g. per cluster).
    """

    sigma_scale: float = 1.0
    sigmas: dict[LogicalOpType, float] = field(default_factory=lambda: dict(DEFAULT_SIGMAS))
    seed_salt: str = "carderr"


def _gauss_from_unit(u: float) -> float:
    """Unit-interval value -> standard normal via the probit approximation.

    Acklam-style rational approximation; adequate for deterministic error
    factors (we need reproducibility, not tail precision).
    """
    u = min(max(u, 1e-12), 1.0 - 1e-12)
    # Beasley-Springer-Moro inverse normal CDF approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if u < p_low:
        q = math.sqrt(-2 * math.log(u))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if u > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - u))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = u - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


class CardinalityEstimator:
    """Estimates output cardinalities of physical plans, with realistic errors.

    Usage::

        est = CardinalityEstimator()
        estimated_rows = est.estimate(physical_op)
    """

    def __init__(self, config: EstimatorConfig | None = None) -> None:
        self.config = config or EstimatorConfig()
        self._memo: dict[int, float] = {}
        #: Error factors are template-level constants; memoized across plans
        #: (the same recurring template is misestimated identically every
        #: day).  Keyed by (tag, id(op_type)) — enum members are singletons
        #: and id() skips enum.__hash__ on this hot lookup.
        self._error_memo: dict[tuple[str, int], float] = {}

    def error_factor(self, op: PhysicalOp) -> float:
        """Deterministic multiplicative error for this operator's template."""
        logical = op.logical
        if logical is None:
            return 1.0
        return self.error_factor_for(logical.template_tag, logical.op_type)

    def error_factor_for(self, template_tag: str, op_type: LogicalOpType) -> float:
        """Template-level error factor by (tag, logical type), memoized."""
        key = (template_tag, id(op_type))
        cached = self._error_memo.get(key)
        if cached is not None:
            return cached
        sigma = self.config.sigmas.get(op_type, 0.0) * self.config.sigma_scale
        if sigma <= 0.0:
            value = 1.0
        else:
            u = stable_unit_float(self.config.seed_salt, template_tag, op_type.value)
            value = math.exp(sigma * _gauss_from_unit(u))
        self._error_memo[key] = value
        return value

    def estimate(self, op: PhysicalOp) -> float:
        """Estimated output cardinality of ``op`` (recursive, memoized)."""
        key = id(op)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self._estimate_uncached(op)
        self._memo[key] = value
        return value

    def _estimate_uncached(self, op: PhysicalOp) -> float:
        child_estimates = [self.estimate(child) for child in op.children]
        logical = op.logical
        if logical is None:
            # Enforcers (Exchange, enforcer Sort) pass cardinality through.
            return child_estimates[0]
        return self.estimate_logical(logical, child_estimates)

    def estimate_logical(self, logical, child_estimates: list[float]) -> float:
        """The estimate formula for one logical node over its (physical)
        children's estimates.

        Single source of truth shared by the per-plan recursion above and the
        skeleton planner's replay search, which tracks child estimates on its
        own lightweight nodes.
        """
        op_type = logical.op_type
        if op_type is LogicalOpType.GET:
            # Base table row counts come from catalog statistics, which the
            # system maintains accurately; errors enter at predicates and up.
            return logical.true_card
        if op_type is LogicalOpType.UNION:
            return float(sum(child_estimates))

        if op_type is LogicalOpType.JOIN:
            base = max(child_estimates) if child_estimates else 0.0
        else:
            base = child_estimates[0]

        error = self.error_factor_for(logical.template_tag, op_type)
        # Aggregates estimate "number of groups", independent of what
        # physical shape (e.g. local pre-aggregation) feeds them; top-k is
        # bounded by its literal limit.
        if op_type is LogicalOpType.AGGREGATE and logical.group_count is not None:
            estimate = min(base, logical.group_count * error)
        elif op_type is LogicalOpType.TOP_K and logical.limit is not None:
            estimate = min(base, float(logical.limit))
        else:
            estimate = logical.sel_true * error * base
            # Operators whose output can never exceed their input; identity
            # checks because frozenset membership would hash the enum on
            # every call.
            if (
                op_type is LogicalOpType.FILTER
                or op_type is LogicalOpType.AGGREGATE
                or op_type is LogicalOpType.TOP_K
            ):
                estimate = min(estimate, base)
        return max(estimate, 0.0)

    def estimate_input(self, op: PhysicalOp) -> float:
        """Estimated total input cardinality from the children (``I``)."""
        if not op.children:
            return self.estimate(op)
        return float(sum(self.estimate(child) for child in op.children))

    def reset(self) -> None:
        """Clear the memo (call between plans if operators are reused)."""
        self._memo.clear()
