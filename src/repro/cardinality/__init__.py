"""Cardinality estimation: default estimator, perfect feedback, CardLearner.

The default estimator reproduces the failure mode the paper measures: each
operator's local selectivity estimate is off by a deterministic per-template
factor, and the errors *compound* as they propagate up the plan (Section 2.4).
Perfect feedback replaces every estimate by the true cardinality — the ideal
any learned cardinality model could reach — and CardLearner is the Poisson
regression baseline of Section 6.4.
"""

from repro.cardinality.cardlearner import CardLearner
from repro.cardinality.estimator import CardinalityEstimator, EstimatorConfig
from repro.cardinality.perfect import PerfectCardinalityEstimator

__all__ = [
    "CardLearner",
    "CardinalityEstimator",
    "EstimatorConfig",
    "PerfectCardinalityEstimator",
]
