"""Perfect-cardinality feedback: the ideal any estimator could achieve.

Figure 1 of the paper feeds actual runtime cardinalities back into the cost
models to show that even *perfect* cardinalities leave a wide cost gap.  This
estimator returns the true cardinality for every operator; it is used by the
fig1 experiment and anywhere a "best case cardinality" ablation is needed.
"""

from __future__ import annotations

from repro.cardinality.estimator import CardinalityEstimator, EstimatorConfig
from repro.plan.physical import PhysicalOp


class PerfectCardinalityEstimator(CardinalityEstimator):
    """A cardinality oracle: estimates equal true cardinalities."""

    def __init__(self) -> None:
        super().__init__(EstimatorConfig(sigma_scale=0.0))

    def estimate(self, op: PhysicalOp) -> float:
        return op.true_card

    def error_factor(self, op: PhysicalOp) -> float:
        return 1.0
