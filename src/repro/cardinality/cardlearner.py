"""CardLearner: the learned-cardinality baseline (Section 6.4).

Wu et al. (PVLDB 2018) learn a Poisson regression model per recurring
subgraph template that predicts the template's output cardinality.  We
reproduce that: one Poisson GLM (log link) per operator template tag, fitted
by iteratively reweighted least squares on logged (features, actual rows)
pairs.  Predictions replace the default estimates for covered templates; the
*cost* model remains the default one — which is exactly the configuration the
paper compares against to show that fixing cardinalities alone does not fix
cost estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cardinality.estimator import CardinalityEstimator
from repro.plan.logical import LogicalOpType
from repro.plan.physical import PhysicalOp


def _features(input_card: float, base_card: float) -> np.ndarray:
    """Feature map for the Poisson GLM: intercept + log-scale sizes."""
    return np.array([1.0, np.log1p(input_card), np.log1p(base_card)])


@dataclass
class _TemplateSamples:
    rows: list[np.ndarray]
    targets: list[float]


class _PoissonModel:
    """Poisson regression with log link, fitted by IRLS with L2 damping."""

    def __init__(self, weights: np.ndarray) -> None:
        self.weights = weights

    @classmethod
    def fit(
        cls, features: np.ndarray, targets: np.ndarray, iterations: int = 25, ridge: float = 1e-3
    ) -> "_PoissonModel":
        n_features = features.shape[1]
        # Work against log-scaled targets for a stable start.
        weights = np.zeros(n_features)
        weights[0] = float(np.log1p(targets).mean())
        eye = np.eye(n_features) * ridge
        for _ in range(iterations):
            eta = np.clip(features @ weights, -30.0, 30.0)
            mu = np.exp(eta)
            # IRLS update: (X' W X + ridge) dw = X' (y - mu)
            gradient = features.T @ (targets - mu)
            hessian = (features * mu[:, None]).T @ features + eye
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                break
            weights = weights + np.clip(step, -5.0, 5.0)
            if float(np.abs(step).max()) < 1e-8:
                break
        return cls(weights)

    def predict(self, features: np.ndarray) -> float:
        eta = float(np.clip(features @ self.weights, -30.0, 30.0))
        return float(np.exp(eta))


class CardLearner:
    """Per-template learned cardinality models layered over a base estimator.

    Train with :meth:`observe` + :meth:`fit`, then use as a drop-in
    cardinality estimator: covered templates get learned predictions, the
    rest fall back to the wrapped default estimator.
    """

    #: Minimum observations of a template before a model is trained for it.
    min_samples: int = 5

    def __init__(self, base: CardinalityEstimator | None = None) -> None:
        self.base = base or CardinalityEstimator()
        self._samples: dict[str, _TemplateSamples] = {}
        self._models: dict[str, _PoissonModel] = {}

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def observe(self, op: PhysicalOp) -> None:
        """Log one executed operator instance (features + actual rows)."""
        if op.logical is None or op.logical.op_type is LogicalOpType.GET:
            return
        tag = op.template_tag
        bucket = self._samples.setdefault(tag, _TemplateSamples(rows=[], targets=[]))
        bucket.rows.append(_features(op.input_card, op.base_card))
        bucket.targets.append(op.true_card)

    def observe_plan(self, root: PhysicalOp) -> None:
        for node in root.walk():
            self.observe(node)

    def fit(self) -> int:
        """Train one Poisson model per sufficiently observed template.

        Returns the number of trained models.
        """
        self._models.clear()
        for tag, bucket in self._samples.items():
            if len(bucket.targets) < self.min_samples:
                continue
            features = np.vstack(bucket.rows)
            targets = np.asarray(bucket.targets, dtype=float)
            self._models[tag] = _PoissonModel.fit(features, targets)
        return len(self._models)

    @property
    def coverage_templates(self) -> int:
        return len(self._models)

    # ------------------------------------------------------------------ #
    # Estimation (drop-in CardinalityEstimator interface)
    # ------------------------------------------------------------------ #

    def estimate(self, op: PhysicalOp) -> float:
        if op.logical is None:
            return self.estimate(op.children[0])
        model = self._models.get(op.template_tag)
        if model is None:
            return self.base.estimate(op)
        input_estimate = sum(self.estimate(child) for child in op.children) or op.true_card
        return max(0.0, model.predict(_features(input_estimate, op.base_card)))

    def estimate_input(self, op: PhysicalOp) -> float:
        if not op.children:
            return self.estimate(op)
        return float(sum(self.estimate(child) for child in op.children))

    def error_factor(self, op: PhysicalOp) -> float:  # pragma: no cover - interface parity
        return 1.0

    def reset(self) -> None:
        self.base.reset()
