"""Benchmark: Table 5 — accuracy/coverage of all learned models."""

from repro.experiments import tab5_individual_models


def test_tab5_individual_models(run_experiment):
    result = run_experiment(tab5_individual_models)
    cov = {row["model"]: row["coverage_pct"] for row in result.rows}
    err = {row["model"]: row["median_error_pct"] for row in result.rows}
    assert cov["op_subgraph"] <= cov["op_input"] <= cov["operator"]
    assert cov["combined"] == 100.0
    assert err["op_subgraph"] < err["operator"]
    assert err["combined"] < err["Default"]
