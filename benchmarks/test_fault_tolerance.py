"""Benchmark: serving availability under deterministic fault injection.

Chaos-tests the reproduction's reliability story (ROADMAP: a serving tier
that *contains* failures): the serving load replays through the hardened
sharded router under each named fault scenario — shard errors, timeouts,
corrupted outputs, latency spikes, and the combined storm — and the
degradation ladder must answer every request with finite, non-negative
costs (availability 1.0).  The zero-fault section pins the reliability
layer's no-op cost: outputs bitwise identical and ``ServiceStats``
counter-identical to the pre-ladder fail-fast router.  The hedging
section pins the latency-SLO story: hedged latency_spikes serving must
answer bitwise-identically while actually firing hedges; the pipeline
section replays run-log poisoning, mid-retrain crashes, and a
quarantined planner, all of which must fully recover.  Drops
``BENCH_faults.json`` under ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.fault_tolerance import (
    format_result,
    run_benchmark,
    write_result,
)


def test_fault_tolerance(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, epochs=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_faults.json")
    assert result["zero_fault"]["predictions_bitwise_identical"]
    assert result["zero_fault"]["stats_counter_identical"]
    assert result["baseline_availability"] == 1.0
    assert result["all_available"]
    hedging = result["hedging"]
    assert hedging["predictions_bitwise_identical"]
    assert hedging["hedges"] > 0
    assert hedging["availability"] == 1.0
    pipeline = {row["scenario"]: row for row in result["pipeline"]}
    assert set(pipeline) == {
        "poisoned_runlog",
        "retrain_crash",
        "quarantined_planner",
    }
    for row in pipeline.values():
        assert row["availability"] == 1.0
        assert row["recovery"], row["scenario"]
    assert result["pipeline_all_recovered"]
