"""Benchmark: Figure 7 — per-operator error bands per model."""

from repro.experiments import fig7_heatmap


def test_fig7_heatmap(run_experiment):
    result = run_experiment(fig7_heatmap)
    combined = result.row_by("model", "combined")
    operator = result.row_by("model", "operator")
    assert combined["coverage_pct"] == 100.0
    assert combined["within_0.8_1.25x_pct"] >= operator["within_0.8_1.25x_pct"]
