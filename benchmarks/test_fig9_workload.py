"""Benchmark: Figure 9 — workload summary table."""

from repro.experiments import fig9_workload_summary


def test_fig9_workload(run_experiment):
    result = run_experiment(fig9_workload_summary)
    overall = result.row_by("cluster", "overall")
    assert overall["recurring_jobs"] > 0.7 * overall["total_jobs"]
    assert overall["common_subexpr"] > 0.5 * overall["total_subexpr"]
