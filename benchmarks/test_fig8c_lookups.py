"""Benchmark: Figure 8(c) — model lookups per exploration strategy."""

from repro.experiments import fig8c_lookups


def test_fig8c_lookups(run_experiment):
    result = run_experiment(fig8c_lookups)
    at_40 = {row["strategy"]: row["lookups_40_ops"] for row in result.rows}
    assert at_40["analytical"] == 200  # the paper's "maximum of 200 look-ups"
    assert at_40["exhaustive"] > at_40["sampling-geometric(s=5)"] > at_40["analytical"]
