"""Benchmark: Figure 14 — robustness over a one-month test horizon."""

from repro.experiments import fig14_robustness


def test_fig14_robustness(run_experiment):
    result = run_experiment(fig14_robustness)
    coverage = result.series["coverage_op_subgraph"]
    # Subgraph coverage decays over the month; combined stays total.
    assert coverage[-1] <= coverage[0]
    assert all(v == 100.0 for v in result.series["coverage_combined"])
