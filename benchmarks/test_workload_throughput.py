"""Benchmark: workload-generation throughput (scalar reference vs batched).

Like ``test_train_throughput`` this one has no paper counterpart — it
tracks the reproduction's own perf trajectory (ROADMAP: "fast as the
hardware allows").  It runs ``run_multi_cluster_workload`` through both
execution paths, asserts bitwise-identical run logs, and drops
``BENCH_workload.json`` under ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.workload_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_workload_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_workload.json")
    assert result["runlogs_bitwise_identical"]
    assert result["speedup"] > 1.0
