"""Benchmark: the Section 6.7 cost-model applications, quantified."""

from repro.experiments import ext_applications


def test_ext_applications(run_experiment):
    result = run_experiment(ext_applications)
    by_metric = {(r["application"], r["metric"]): r for r in result.rows}

    prediction = by_metric[("prediction", "job-latency pearson")]
    assert prediction["learned"] > 0.5

    coverage = by_metric[("prediction", "90% interval coverage %")]
    assert 60.0 <= coverage["learned"] <= 100.0

    jct = by_metric[("scheduling", "mean job completion s")]
    # Learned estimates schedule no worse than default (small tolerance) and
    # land near the perfect-knowledge oracle.
    assert jct["learned"] <= jct["default"] * 1.05
    assert jct["learned"] <= jct["oracle"] * 1.25

    progress = by_metric[("progress", "mean |progress error|")]
    assert progress["learned"] < progress["default"]
