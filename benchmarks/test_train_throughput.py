"""Benchmark: training throughput (scalar reference vs columnar trainer).

Unlike the figure/table benchmarks this one has no paper counterpart — it
tracks the reproduction's own perf trajectory (ROADMAP: "fast as the
hardware allows").  It runs ``CleoTrainer.train`` through both paths,
asserts bitwise-identical predictions, and drops ``BENCH_train.json`` under
``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.train_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_train_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_train.json")
    assert result["predictions_bitwise_identical"]
    assert result["speedup"] > 1.0
