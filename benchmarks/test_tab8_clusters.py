"""Benchmark: Table 8 — default vs combined per cluster."""

from repro.experiments import tab8_all_clusters


def test_tab8_clusters(run_experiment):
    result = run_experiment(tab8_all_clusters)
    for row in result.rows:
        assert row["learned_corr"] > row["default_corr"]
        assert row["learned_err_pct"] < row["default_err_pct"]
