"""Benchmark: Table 6 — meta-learner choice for the combined model."""

from repro.experiments import tab6_combined_meta


def test_tab6_combined_meta(run_experiment):
    result = run_experiment(tab6_combined_meta)
    errors = {row["meta_learner"]: row["median_error_pct"] for row in result.rows}
    # Paper: FastTree wins outright and elastic net is worst.  At simulator
    # scale the individual predictions are homogeneous enough that a linear
    # blend stays competitive, so the asserted shape is the weaker one that
    # does hold: FastTree is at or near the best meta-learner.
    assert errors["FastTree Regression"] <= 1.4 * min(errors.values())
