"""Benchmark: Figure 12 — accuracy CDFs on all jobs, four clusters."""

from repro.experiments import fig12_13_accuracy_cdfs


def test_fig12_accuracy(run_experiment):
    result = run_experiment(fig12_13_accuracy_cdfs, adhoc_only=False)
    by_cluster = {}
    for row in result.rows:
        by_cluster.setdefault(row["cluster"], {})[row["model"]] = row
    for cluster, models in by_cluster.items():
        assert models["combined"]["central_mass_0.5_2x"] > models["default"]["central_mass_0.5_2x"]
