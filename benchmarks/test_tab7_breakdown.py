"""Benchmark: Table 7 — cluster-1 breakdown, all vs ad-hoc jobs."""

from repro.experiments import tab7_cluster1_breakdown


def test_tab7_breakdown(run_experiment):
    result = run_experiment(tab7_cluster1_breakdown)
    all_rows = {r["model"]: r for r in result.rows if r["jobs"] == "all"}
    adhoc_rows = {r["model"]: r for r in result.rows if r["jobs"] == "adhoc"}
    # Ad-hoc subgraph coverage must drop well below all-jobs coverage.
    assert adhoc_rows["op_subgraph"]["coverage_pct"] < all_rows["op_subgraph"]["coverage_pct"]
    # But ad-hoc jobs still get substantial subexpression coverage (>10%).
    assert adhoc_rows["op_subgraph"]["coverage_pct"] > 10.0
