"""Benchmark: Figure 18 — cumulative feature ablation."""

from repro.experiments import fig18_feature_ablation


def test_fig18_ablation(run_experiment):
    result = run_experiment(fig18_feature_ablation)
    errors = result.series["median_error_pct"]
    # Perfect cardinalities alone leave several times the full-feature error.
    assert errors[1] > errors[-1] * 1.5
    assert min(errors) == errors[-1] or min(errors) < errors[1]
