"""Benchmark: Figure 13 — accuracy CDFs on ad-hoc jobs only."""

from repro.experiments import fig12_13_accuracy_cdfs


def test_fig13_adhoc_accuracy(run_experiment):
    result = run_experiment(fig12_13_accuracy_cdfs, adhoc_only=True)
    combined_rows = [r for r in result.rows if r["model"] == "combined"]
    assert combined_rows
    # Combined model still covers and beats default on ad-hoc-only jobs.
    for row in combined_rows:
        assert row["coverage_pct"] == 100.0
