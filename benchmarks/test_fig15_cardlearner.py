"""Benchmark: Figure 15 — Cleo vs CardLearner."""

from repro.experiments import fig15_cardlearner


def test_fig15_cardlearner(run_experiment):
    result = run_experiment(fig15_cardlearner)
    errors = {row["configuration"]: row["median_error_pct"] for row in result.rows}
    # Learned cardinalities alone cannot fix the cost model; Cleo can.
    assert errors["cleo"] < errors["default+cardlearner"] / 2
    assert errors["default+cardlearner"] < errors["default"] * 1.5
