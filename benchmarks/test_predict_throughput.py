"""Benchmark: prediction throughput (pre-packed serving path vs packed).

Unlike the figure/table benchmarks this one has no paper counterpart — it
tracks the reproduction's own perf trajectory (ROADMAP: "fast as the
hardware allows").  It serves the canonical workload through the retained
request-materializing grouped path and the packed table-native path,
asserts bitwise-identical predictions, and drops ``BENCH_predict.json``
under ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.predict_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_predict_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, repeats=5),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_predict.json")
    assert result["predictions_bitwise_identical"]
    assert result["speedup"] > 1.0
