"""Benchmark harness: one benchmark per paper table/figure.

Each benchmark runs its experiment once (the experiments are deterministic,
seeded end to end), reports the wall time through pytest-benchmark, prints
the paper-style table, and drops the rendered result under
``benchmarks/results/`` so ``scripts/build_experiments_md.py`` can assemble
EXPERIMENTS.md from a real run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload scale used by all benchmarks (see repro.experiments.shared.SCALES).
BENCH_SCALE = "small"
BENCH_SEED = 0


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def run_experiment(benchmark, results_dir):
    """Run an experiment module once under pytest-benchmark and persist it."""

    def _run(module, **kwargs):
        kwargs.setdefault("scale", BENCH_SCALE)
        kwargs.setdefault("seed", BENCH_SEED)
        result = benchmark.pedantic(lambda: module.run(**kwargs), rounds=1, iterations=1)
        text = result.to_text()
        print()
        print(text)
        (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
        payload = {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "paper": result.paper,
            "notes": result.notes,
        }
        (results_dir / f"{result.experiment_id}.json").write_text(
            json.dumps(payload, indent=2, default=str)
        )
        return result

    return _run
