"""Benchmark: Figure 11 — ML-algorithm CV CDFs per model class (cluster 4)."""

from repro.experiments import fig11_cv_cdfs


def test_fig11_cv_cdfs(run_experiment):
    result = run_experiment(fig11_cv_cdfs)
    default = result.row_by("algorithm", "Default")
    learned = [row for row in result.rows if row["algorithm"] != "Default"]
    assert learned
    # Every learner on every class beats the default model's error.
    assert all(row["median_error_pct"] < default["median_error_pct"] for row in learned)
