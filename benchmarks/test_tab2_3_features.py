"""Benchmark: Tables 2-3 — feature set with elastic-net selection."""

from repro.experiments import tab2_3_features


def test_tab2_3_features(run_experiment):
    result = run_experiment(tab2_3_features)
    # Every paper feature must be selected by at least one subgraph model.
    assert all(row["models_selecting"] > 0 for row in result.rows)
