"""Benchmark: Figure 5 — feature weights of the subgraph models."""

from repro.experiments import fig5_6_feature_weights


def test_fig5_feature_weights(run_experiment):
    result = run_experiment(fig5_6_feature_weights)
    conc = {row["model"]: row["concentration"] for row in result.rows}
    assert conc["op_subgraph"] >= conc["op_input"]
