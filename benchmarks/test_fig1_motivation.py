"""Benchmark: Figure 1 — default/tuned cost model accuracy."""

from repro.experiments import fig1_motivation


def test_fig1_motivation(run_experiment):
    result = run_experiment(fig1_motivation)
    # Shape: every heuristic variant stays weakly correlated.
    assert all(row["pearson"] < 0.6 for row in result.rows)
