"""Benchmark: Figure 10 — day-over-day workload changes."""

from repro.experiments import fig10_workload_changes


def test_fig10_workload(run_experiment):
    result = run_experiment(fig10_workload_changes)
    assert any(abs(row["input_volume_pct"]) > 1.0 for row in result.rows)
