"""Benchmark: Table 1 — regression loss comparison (5-fold CV)."""

from repro.experiments import tab1_loss_functions


def test_tab1_loss_functions(run_experiment):
    result = run_experiment(tab1_loss_functions)
    errors = {row["loss_function"]: row["median_error_pct"] for row in result.rows}
    # The paper's conclusion: MSLE is the best loss for cost models.
    assert errors["mean_squared_log_error"] == min(errors.values())
