"""Benchmark: Figure 3 — ad-hoc job fraction per cluster/day."""

from repro.experiments import fig3_adhoc


def test_fig3_adhoc(run_experiment):
    result = run_experiment(fig3_adhoc)
    assert all(2.0 <= row["adhoc_pct"] <= 30.0 for row in result.rows)
