"""Benchmark: Figure 6 — feature weights of the generalized models."""

from repro.experiments import fig5_6_feature_weights


def test_fig6_feature_weights(run_experiment):
    result = run_experiment(fig5_6_feature_weights)
    # Generalized models must spread weight over more features.
    conc = {row["model"]: row["concentration"] for row in result.rows}
    assert conc["operator"] <= conc["op_subgraph"]
