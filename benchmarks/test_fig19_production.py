"""Benchmark: Figure 19 — production jobs replanned with Cleo."""

from repro.experiments import fig19_production_performance


def test_fig19_production(run_experiment):
    result = run_experiment(fig19_production_performance)
    summary = result.row_by("job", "summary")
    # Partition exploration must add plan changes on top of structural ones.
    assert (
        summary["plan_change_pct_with_partition"]
        >= summary["plan_change_pct_structural"]
    )
    # A majority of executed (changed) jobs improve latency.
    assert summary["jobs_improved_pct"] >= 50.0
    assert summary["cumulative_latency_improvement_pct"] > 0
