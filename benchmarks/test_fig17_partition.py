"""Benchmark: Figure 17 — partition-exploration accuracy vs efficiency."""

from repro.experiments import fig17_partition_exploration


def test_fig17_partition(run_experiment):
    result = run_experiment(fig17_partition_exploration)
    analytical = result.series["median_error_analytical"][0]
    geometric = result.series["median_error_geometric"]
    counts = result.series["sample_counts"]
    # The analytical single-shot beats small sampling budgets...
    assert analytical <= geometric[0] + 1e-9
    # ...and large sampling budgets eventually converge to the optimum.
    assert geometric[-1] <= geometric[0]
