"""Benchmark: Figure 2 — 150 instances of an hourly recurring job."""

from repro.experiments import fig2_recurring


def test_fig2_recurring(run_experiment):
    result = run_experiment(fig2_recurring)
    assert result.row_by("metric", "latency (minutes)")["spread_x"] > 1.2
