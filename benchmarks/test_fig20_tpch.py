"""Benchmark: Figure 20 — the TPC-H case study."""

from repro.experiments import fig20_tpch


def test_fig20_tpch(run_experiment):
    result = run_experiment(fig20_tpch)
    changed = [row for row in result.rows if row["query"] != "summary"]
    # Several queries change plans; the majority improve latency.
    assert len(changed) >= 3
    improved = [r for r in changed if r["latency_improvement_pct"] > 0]
    assert len(improved) >= len(changed) / 2
