"""Benchmark: recurring-fleet replanning throughput (per-job vs replay).

Unlike the figure/table benchmarks this one has no paper counterpart — it
tracks the reproduction's own perf trajectory (ROADMAP: "fast as the
hardware allows").  It replans a recurring-job fleet (the canonical
workload's test day, each job replicated into several live instances) with
learned costs through the per-job batched ``QueryPlanner`` loop and the
fleet skeleton-replay driver, asserts bitwise-identical plan choices and
lookup accounting, and drops ``BENCH_replan.json`` under
``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.replan_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_replan_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, repeats=5),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_replan.json")
    assert result["plans_bitwise_identical"]
    assert result["lookup_accounting_identical"]
    assert result["speedup"] > 1.0
