"""Benchmark: learned-cost planning throughput (scalar vs batched).

Unlike the figure/table benchmarks this one has no paper counterpart — it
tracks the reproduction's own perf trajectory (ROADMAP: "fast as the
hardware allows").  It re-plans the canonical workload's test day with
learned cost models through the retained per-candidate scalar loop and the
batched frontier/sweep pricing path, asserts bitwise-identical plan
choices, and drops ``BENCH_plan.json`` under ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.plan_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_plan_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, repeats=5),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_plan.json")
    assert result["plans_bitwise_identical"]
    assert result["speedup"] > 1.0
