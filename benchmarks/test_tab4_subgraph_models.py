"""Benchmark: Table 4 — ML algorithms on the operator-subgraph model."""

from repro.experiments import tab4_subgraph_models


def test_tab4_subgraph_models(run_experiment):
    result = run_experiment(tab4_subgraph_models)
    default = result.row_by("model", "Default")
    for row in result.rows:
        if row["model"] == "Default":
            continue
        assert row["median_error_pct"] < default["median_error_pct"]
        assert row["correlation"] > default["correlation"]
