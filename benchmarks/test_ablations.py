"""Benchmarks: ablations of the reproduction's design choices (DESIGN.md §6)."""

from repro.experiments import ablations


def _persist(results_dir, result):
    import json

    text = result.to_text()
    print()
    print(text)
    (results_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": result.rows,
        "paper": result.paper,
        "notes": result.notes,
    }
    (results_dir / f"{result.experiment_id}.json").write_text(
        json.dumps(payload, indent=2, default=str)
    )
    return result


def test_ablation_jitter(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_jitter_ablation(scale="tiny", seed=0), rounds=1, iterations=1
    )
    _persist(results_dir, result)
    with_jitter = result.row_by("training_jitter", 0.35)
    without = result.row_by("training_jitter", 0.0)
    # Jitter-trained models must carry more partition-count signal.
    assert with_jitter["theta_c_zero_pct"] <= without["theta_c_zero_pct"]


def test_ablation_nonneg(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_nonneg_ablation(scale="tiny", seed=0), rounds=1, iterations=1
    )
    _persist(results_dir, result)
    constrained = result.row_by("constrained", True)
    unconstrained = result.row_by("constrained", False)
    assert constrained["degenerate_profile_pct"] <= unconstrained["degenerate_profile_pct"]
    assert constrained["degenerate_profile_pct"] == 0.0


def test_ablation_noise(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_noise_sensitivity(scale="tiny", seed=0), rounds=1, iterations=1
    )
    _persist(results_dir, result)
    errors = result.series["median_error"]
    # Accuracy should degrade with variance, smoothly (no 10x cliff between
    # adjacent settings).
    assert errors[0] <= errors[-1]


def test_ablation_window(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_window_ablation(scale="tiny", seed=0), rounds=1, iterations=1
    )
    _persist(results_dir, result)
    paper_policy = next(
        r for r in result.rows if (r["window_days"], r["frequency_days"]) == (2, 10)
    )
    aggressive = next(
        r for r in result.rows if (r["window_days"], r["frequency_days"]) == (2, 2)
    )
    starved = next(
        r for r in result.rows if (r["window_days"], r["frequency_days"]) == (1, 5)
    )
    # The paper's 2d/10d choice: accuracy close to retraining every 2 days
    # (within 1.5x) at far fewer retrains, and far better than a starved
    # 1-day window.
    assert paper_policy["mean_median_error_pct"] <= aggressive["mean_median_error_pct"] * 1.5
    assert paper_policy["retrains"] < aggressive["retrains"]
    assert paper_policy["mean_median_error_pct"] < starved["mean_median_error_pct"]


def test_ablation_meta(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_meta_ablation(scale="tiny", seed=0), rounds=1, iterations=1
    )
    _persist(results_dir, result)
    paper_layout = result.row_by("meta_features", "paper (pred + extras)")
    with_default = result.row_by("meta_features", "paper + default cost")
    # Section 4.3: adding the default cost model as a meta feature "did not
    # result in any improvement" — allow noise but no material gain.
    assert with_default["median_error_pct"] >= paper_layout["median_error_pct"] * 0.6
    for row in result.rows:
        assert row["pearson"] > 0.8


def test_ablation_global(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: ablations.run_specialization_ablation(scale="tiny", seed=0),
        rounds=1,
        iterations=1,
    )
    _persist(results_dir, result)
    global_net = result.row_by("model", "global elastic net")
    global_tree = result.row_by("model", "global fasttree")
    per_operator = result.row_by("model", "per-operator collection")
    full = result.row_by("model", "full collection + combined")
    # No one-size-fits-all: every single global model trails the
    # per-operator collection, which trails the full collection.
    assert per_operator["median_error_pct"] < global_net["median_error_pct"]
    assert per_operator["median_error_pct"] < global_tree["median_error_pct"]
    assert full["median_error_pct"] <= per_operator["median_error_pct"]
    assert full["pearson"] >= per_operator["pearson"]
