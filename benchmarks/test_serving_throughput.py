"""Benchmark: the sharded serving tier under a mixed request load.

Tracks the reproduction's serving-at-scale trajectory (ROADMAP: "heavy
traffic from millions of users"): a deterministic multi-cluster
predict/plan stream replayed for several epochs against one single-process
``CleoService`` per cluster and against the sharded router at 1/2/4
shards.  Asserts every configuration's merged predictions are bitwise
identical to the single-process baseline and that scale-out pays: the
widest multi-shard config (whose fleet-aggregate LRU capacity holds the
working set a single shard's cache cannot) clears 2x the single-shard
steady-state throughput.  Drops ``BENCH_serving.json`` under
``benchmarks/results/``.
"""

from __future__ import annotations

from repro.experiments.serving_throughput import (
    format_result,
    run_benchmark,
    write_result,
)


def test_serving_throughput(benchmark, results_dir):
    # Same workload preset as the figure/table benchmarks (conftest).
    result = benchmark.pedantic(
        lambda: run_benchmark(scale="small", seed=0, epochs=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_serving.json")
    assert result["predictions_bitwise_identical"]
    assert result["multi_shard_speedup"] is not None
    assert result["multi_shard_speedup"] >= 2.0
