"""Benchmark: Figure 16 — hash-join weights across subexpression sets."""

from repro.experiments import fig16_hashjoin_weights


def test_fig16_hashjoin(run_experiment):
    result = run_experiment(fig16_hashjoin_weights)
    masses = {
        row["set"]: row.get("partition_feature_mass")
        for row in result.rows
        if "partition_feature_mass" in row
    }
    assert len(masses) >= 1  # at least one set fitted
    # Where both sets fit, their weight profiles must differ.
    if len(masses) == 2:
        values = list(masses.values())
        assert abs(values[0] - values[1]) > 1e-3
