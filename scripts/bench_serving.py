#!/usr/bin/env python
"""Run the serving load test and write ``BENCH_serving.json``.

Usage::

    PYTHONPATH=src python scripts/bench_serving.py [--scale tiny|small|full]
        [--clusters cluster1 cluster2] [--seed 0] [--epochs 4]
        [--shards 1 1 2 4] [--workers 1 4 4 4] [--max-jobs N]
        [--out BENCH_serving.json]

Drives the deterministic mixed predict/plan request stream through one
single-process ``CleoService`` per cluster and through the sharded router
at every ``(--shards[i], --workers[i])`` configuration, checks the merged
predictions are bitwise identical everywhere, and records throughput,
p50/p99 latency, and cache hit rates per configuration.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.serving_throughput import (  # noqa: E402
    format_result,
    run_benchmark,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument(
        "--clusters", nargs="+", default=["cluster1", "cluster2"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 1, 2, 4],
        help="shard count of each configuration (paired with --workers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 4, 4, 4],
        help="worker count of each configuration (paired with --shards)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="cap jobs per cluster (smoke runs)",
    )
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    if len(args.shards) != len(args.workers):
        parser.error("--shards and --workers must pair up")
    result = run_benchmark(
        scale=args.scale,
        clusters=tuple(args.clusters),
        seed=args.seed,
        epochs=args.epochs,
        configs=tuple(zip(args.shards, args.workers)),
        max_jobs_per_cluster=args.max_jobs,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["predictions_bitwise_identical"]:
        print("ERROR: sharded predictions diverged from the single-process service")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
