#!/usr/bin/env python
"""Run the workload-throughput benchmark and write ``BENCH_workload.json``.

Usage::

    PYTHONPATH=src python scripts/bench_workload.py [--scale tiny|small|full]
        [--days 1 2 3] [--seed 0] [--repeats 3] [--out BENCH_workload.json]

Times ``run_multi_cluster_workload`` through the retained scalar reference
path and the batched engine (skeleton planner + vectorized ground truth +
columnar RunLog ingest) on the same generated workload, verifies the two
produce bitwise-identical run logs, and records both timings — the perf
trajectory the ROADMAP asks for.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.workload_throughput import (  # noqa: E402
    format_result,
    run_benchmark,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument("--days", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_workload.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        scale=args.scale, days=tuple(args.days), seed=args.seed, repeats=args.repeats
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["runlogs_bitwise_identical"]:
        print("ERROR: batched run log diverged from the scalar reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
