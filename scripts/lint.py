#!/usr/bin/env python3
"""Run the determinism/concurrency lint pass (CI entry point).

Equivalent to ``repro lint``; exists so CI and pre-commit hooks can run the
pass without installing the package:

    python scripts/lint.py src/repro
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
