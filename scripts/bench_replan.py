#!/usr/bin/env python
"""Run the replan-throughput benchmark and write ``BENCH_replan.json``.

Usage::

    PYTHONPATH=src python scripts/bench_replan.py [--scale tiny|small|full]
        [--seed 0] [--repeats 5] [--instances 4] [--out BENCH_replan.json]

Times replanning a recurring-job fleet (the generated workload's test day,
each job replicated into several live instances) with learned cost models
through the per-job batched ``QueryPlanner`` loop and through the fleet
skeleton-replay driver, verifies the two choose bitwise-identical plans
(shapes, partition counts, costs, lookup accounting), and records both
timings — the optimizer-side perf trajectory the ROADMAP asks for.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.replan_throughput import (  # noqa: E402
    format_result,
    run_benchmark,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--instances", type=int, default=4)
    parser.add_argument("--out", default="BENCH_replan.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        instances=args.instances,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["plans_bitwise_identical"]:
        print("ERROR: fleet replay diverged from the per-job planner")
        return 1
    if not result["lookup_accounting_identical"]:
        print("ERROR: fleet replay changed per-prediction lookup accounting")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
