#!/usr/bin/env python
"""Run the plan-throughput benchmark and write ``BENCH_plan.json``.

Usage::

    PYTHONPATH=src python scripts/bench_plan.py [--scale tiny|small|full]
        [--seed 0] [--repeats 5] [--out BENCH_plan.json]

Times re-planning the generated workload's test day with learned cost
models through the retained scalar ``predict_operator`` loop and through
the batched frontier/sweep pricing path, verifies the two choose
bitwise-identical plans (shapes, partition counts, costs), and records
both timings — the optimizer-side perf trajectory the ROADMAP asks for.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.plan_throughput import (  # noqa: E402
    format_result,
    run_benchmark,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_plan.json")
    args = parser.parse_args(argv)

    result = run_benchmark(scale=args.scale, seed=args.seed, repeats=args.repeats)
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["plans_bitwise_identical"]:
        print("ERROR: batched planning diverged from the scalar planner")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
