#!/usr/bin/env python
"""Run the serving chaos benchmark and write ``BENCH_faults.json``.

Usage::

    PYTHONPATH=src python scripts/bench_faults.py [--scale tiny|small|full]
        [--clusters cluster1 cluster2] [--seed 0] [--epochs 2]
        [--shards 3] [--workers 1] [--scenarios baseline mixed_chaos ...]
        [--max-jobs N] [--out BENCH_faults.json]

Replays the deterministic serving load through the hardened sharded
router under each named fault scenario (deterministic, seeded injection
of shard errors, timeouts, corrupted outputs, and latency spikes),
records availability / tail latency / degraded fraction / breaker
activity per scenario, and pins the zero-fault path bitwise- and
counter-identical to the fail-fast router.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.fault_tolerance import (  # noqa: E402
    DEFAULT_SCENARIOS,
    PIPELINE_SCENARIOS,
    format_result,
    list_scenarios,
    run_benchmark,
    select_scenarios,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument(
        "--clusters", nargs="+", default=["cluster1", "cluster2"]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=list(DEFAULT_SCENARIOS),
        help="named serving fault scenarios to replay (see repro.serving.faults)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this scenario (repeatable; serving or pipeline names; "
        "overrides --scenarios)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list every serving and pipeline chaos scenario, then exit",
    )
    parser.add_argument(
        "--hedge-threshold",
        type=float,
        default=0.001,
        metavar="SECONDS",
        help="latency SLO for hedged requests; 0 disables hedging (default: 0.001)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="cap jobs per cluster (smoke runs)",
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    if args.list_scenarios:
        print(list_scenarios())
        return 0

    if args.scenario:
        try:
            serving, pipeline = select_scenarios(args.scenario)
        except ValueError as exc:
            print(f"ERROR: {exc}")
            return 2
    else:
        serving, pipeline = tuple(args.scenarios), PIPELINE_SCENARIOS

    result = run_benchmark(
        scale=args.scale,
        clusters=tuple(args.clusters),
        seed=args.seed,
        epochs=args.epochs,
        shards=args.shards,
        workers=args.workers,
        scenarios=serving,
        max_jobs_per_cluster=args.max_jobs,
        pipeline_scenarios=pipeline,
        hedge_threshold_s=args.hedge_threshold or None,
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["zero_fault"]["predictions_bitwise_identical"]:
        print("ERROR: hardened router diverged from the fail-fast fleet")
        return 1
    if not result["zero_fault"]["stats_counter_identical"]:
        print("ERROR: hardened router stats diverged with faults disabled")
        return 1
    if not result["all_available"]:
        print("ERROR: a fault scenario dropped below availability 1.0")
        return 1
    if result["pipeline_all_recovered"] is False:
        print("ERROR: a pipeline chaos scenario failed to recover")
        return 1
    hedging = result["hedging"]
    if hedging is not None and not hedging["predictions_bitwise_identical"]:
        print("ERROR: hedged serving diverged from the unhedged replay")
        return 1
    if hedging is not None and hedging["hedges"] == 0:
        print("ERROR: hedging enabled but no request was hedged")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
