#!/usr/bin/env python
"""Run the prediction-throughput benchmark and write ``BENCH_predict.json``.

Usage::

    PYTHONPATH=src python scripts/bench_predict.py [--scale tiny|small|full]
        [--days 1 2 3] [--seed 0] [--repeats 5] [--out BENCH_predict.json]

Times serving the generated workload's operator batch through the retained
pre-packed pipeline (request materialization + grouped object-graph model
calls) and through the packed table-native fast path, verifies the two
produce bitwise-identical predictions, and records both timings — the
serving-side perf trajectory the ROADMAP asks for.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.predict_throughput import (  # noqa: E402
    format_result,
    run_benchmark,
    write_result,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "full"])
    parser.add_argument("--days", type=int, nargs="+", default=[1, 2, 3])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_predict.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        scale=args.scale, days=tuple(args.days), seed=args.seed, repeats=args.repeats
    )
    path = write_result(result, args.out)
    print(format_result(result))
    print(f"wrote {path}")
    if not result["predictions_bitwise_identical"]:
        print("ERROR: packed predictions diverged from the grouped reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
