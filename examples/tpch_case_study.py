"""TPC-H case study: which plans change when the optimizer learns costs?

Reproduces the protocol of Section 6.6.2 at SF 1000: run all 22 queries ten
times with random parameters to train Cleo, then re-optimize each query and
diff the plans.  The paper's changes came from (1) more optimal partition
counts, (2) skipped exchanges, and (3) different join implementations; this
script prints which of those mechanisms fired per query.

Run:  python examples/tpch_case_study.py
"""

from __future__ import annotations

from repro.cardinality import CardinalityEstimator
from repro.core import CleoConfig, CleoCostModel, CleoTrainer
from repro.cost import DefaultCostModel
from repro.data import tpch_catalog
from repro.execution import ExecutionSimulator
from repro.execution.hardware import ClusterSpec
from repro.execution.runtime_log import RunLog
from repro.optimizer import AnalyticalStrategy, PlannerConfig, QueryPlanner
from repro.plan.physical import PhysOpType
from repro.workload.tpch_queries import TpchQuerySet


def plan_diff(default_plan, cleo_plan) -> list[str]:
    """Human-readable description of what changed between two plans."""
    changes = []
    d_ops = [op.op_type for op in default_plan.walk()]
    c_ops = [op.op_type for op in cleo_plan.walk()]
    d_joins = sorted(o.value for o in d_ops if o in (PhysOpType.HASH_JOIN, PhysOpType.MERGE_JOIN))
    c_joins = sorted(o.value for o in c_ops if o in (PhysOpType.HASH_JOIN, PhysOpType.MERGE_JOIN))
    if d_joins != c_joins:
        changes.append(f"join impls {d_joins} -> {c_joins}")
    d_x = sum(1 for o in d_ops if o is PhysOpType.EXCHANGE)
    c_x = sum(1 for o in c_ops if o is PhysOpType.EXCHANGE)
    if d_x != c_x:
        changes.append(f"exchanges {d_x} -> {c_x}")
    d_local = sum(1 for o in d_ops if o is PhysOpType.LOCAL_AGGREGATE)
    c_local = sum(1 for o in c_ops if o is PhysOpType.LOCAL_AGGREGATE)
    if d_local != c_local:
        changes.append(f"local aggs {d_local} -> {c_local}")
    d_parts = [op.partition_count for op in default_plan.walk()]
    c_parts = [op.partition_count for op in cleo_plan.walk()]
    if d_ops == c_ops and d_parts != c_parts:
        changes.append("partition counts")
    return changes


def main() -> None:
    catalog = tpch_catalog(1000.0)  # the paper's 1 TB scale factor
    simulator = ExecutionSimulator(ClusterSpec(name="tpch"), seed=0)
    estimator = CardinalityEstimator()
    queries = TpchQuerySet(catalog, seed=0)
    default_planner = QueryPlanner(
        DefaultCostModel(), estimator, PlannerConfig(partition_jitter=0.35)
    )

    print("training: 22 queries x 10 randomized runs ...")
    log = RunLog()
    for run in range(10):
        for query in queries.all_queries(run=run):
            default_planner.jitter_salt = f"r{run}q{query.query_id}"
            planned = default_planner.plan(query.plan)
            result = simulator.run_job(
                planned.plan,
                job_id=f"q{query.query_id}_r{run}",
                template_id=f"q{query.query_id}",
                day=1 + run % 2,
                estimator=estimator,
            )
            log.append(result.record)

    predictor = CleoTrainer(CleoConfig()).train(log, individual_days=[1], combined_days=[2])
    cleo_planner = QueryPlanner(
        CleoCostModel(predictor), estimator,
        PlannerConfig(partition_strategy=AnalyticalStrategy()),
    )

    print(f"{'query':<6} {'latency':>18} {'cpu-hours':>18}  changes")
    for query in queries.all_queries(run=11):
        default_planner.jitter_salt = f"eval_q{query.query_id}"
        p0 = default_planner.plan(query.plan).plan
        p1 = cleo_planner.plan(query.plan).plan
        changes = plan_diff(p0, p1)
        if not changes:
            continue
        l0, l1 = simulator.expected_job_latency(p0), simulator.expected_job_latency(p1)
        c0, c1 = simulator.expected_cpu_seconds(p0), simulator.expected_cpu_seconds(p1)
        print(
            f"Q{query.query_id:<5} {l0/60:7.1f} -> {l1/60:6.1f}m "
            f"{c0/3600:8.2f} -> {c1/3600:6.2f}h  {'; '.join(changes)}"
        )


if __name__ == "__main__":
    main()
