"""Plan debugging: visualize plans, stages, and execution timelines.

Shows the debuggability tooling around the optimizer and simulator: ASCII
plan trees, stage summaries, execution traces with critical-path analysis,
and a before/after comparison of a default plan vs its Cleo replanning —
the workflow an engineer uses to answer "why is the new plan faster?".

Run:  python examples/plan_debugging.py
"""

from __future__ import annotations

from repro.cardinality import CardinalityEstimator
from repro.core import CleoCostModel, CleoTrainer
from repro.execution.hardware import ClusterSpec
from repro.execution.trace import compare_traces, trace_job
from repro.optimizer import AnalyticalStrategy, PlannerConfig, QueryPlanner
from repro.plan.visualize import diff_plans, render_stages, render_tree
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner
from repro.workload.templates import instantiate


def main() -> None:
    cluster = ClusterSpec(name="democluster")
    generator = WorkloadGenerator(
        ClusterWorkloadConfig(
            cluster_name="democluster", n_tables=8, n_fragments=12, n_templates=18, seed=5
        )
    )
    runner = WorkloadRunner(cluster=cluster, seed=5)
    log = runner.run_days(generator, days=range(1, 4))
    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])

    cleo_planner = QueryPlanner(
        CleoCostModel(predictor),
        CardinalityEstimator(),
        PlannerConfig(partition_strategy=AnalyticalStrategy()),
    )

    # Find a job whose plan Cleo changes, then explain the change.
    catalog = generator.catalog_for_day(3)
    for job in generator.jobs_for_day(3):
        logical = instantiate(job, catalog)
        runner._planner.jitter_salt = job.job_id
        default_plan = runner._planner.plan(logical).plan
        cleo_plan = cleo_planner.plan(logical).plan
        changes = diff_plans(default_plan, cleo_plan)
        if changes:
            break
    else:
        print("no plan changes found")
        return

    print(f"job {job.job_id}: plan changed")
    print("changes:", "; ".join(changes))

    print("\n--- default physical plan ---")
    print(render_tree(default_plan))
    print("\n--- default stages ---")
    print(render_stages(default_plan))

    print("\n--- Cleo physical plan ---")
    print(render_tree(cleo_plan))

    before = trace_job(runner.simulator, default_plan)
    after = trace_job(runner.simulator, cleo_plan)
    print("\n--- execution timeline (default) ---")
    print(before.describe())
    print("\n--- why the Cleo plan wins ---")
    print(compare_traces(before, after))


if __name__ == "__main__":
    main()
