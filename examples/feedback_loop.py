"""The production feedback loop: periodic retraining over two weeks.

Section 5.1 of the paper fixes Cleo's cadence empirically — train on a
two-day window, retrain every ten days — and Section 6.7 describes the
operational safeguards (pre-production gating, discarding regressing
models, self-correction through continued feedback).  This example runs
that lifecycle end to end on a 14-day synthetic workload:

1. generate and execute 14 days of recurring jobs (inputs drift daily);
2. replay the log through a :class:`LifecycleManager` under the paper's
   policy and under a drift-triggered variant;
3. print the per-day accuracy timeline and the version history.

Run:  python examples/feedback_loop.py
"""

from __future__ import annotations

from repro.core import LifecycleManager, RetrainPolicy
from repro.execution.hardware import ClusterSpec
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner

DAYS = 14


def run_policy(log, policy: RetrainPolicy, label: str) -> None:
    manager = LifecycleManager(policy=policy)
    outcomes = manager.run(log)
    print(f"-- {label} --")
    print(f"   day  version  retrain  median_err  pearson")
    for outcome in outcomes:
        marker = "*" if outcome.retrained else " "
        rollback = " (rolled back)" if outcome.rolled_back else ""
        print(
            f"   {outcome.day:>3}  v{outcome.active_version:<6} {marker:^7} "
            f"{outcome.median_error_pct:9.1f}%  {outcome.pearson:7.3f}{rollback}"
        )
    errors = [o.median_error_pct for o in outcomes]
    retrains = sum(o.retrained for o in outcomes)
    print(
        f"   mean median error {sum(errors) / len(errors):.1f}%, "
        f"{retrains} retrains, {manager.registry.version_count} versions published"
    )
    for version in manager.registry.history():
        print(f"   {version.describe()}")
    print()


def main() -> None:
    cluster = ClusterSpec(name="loopcluster")
    config = ClusterWorkloadConfig(
        cluster_name="loopcluster", n_tables=8, n_fragments=14, n_templates=20, seed=11
    )
    generator = WorkloadGenerator(config)
    runner = WorkloadRunner(cluster=cluster, seed=11)
    print(f"executing {DAYS} days of workload ...")
    log = runner.run_days(generator, days=range(1, DAYS + 1))
    print(f"logged {len(log)} jobs / {log.operator_count} operators\n")

    # The paper's policy: 2-day window, retrain every 10 days.
    run_policy(
        log,
        RetrainPolicy(window_days=2, frequency_days=10),
        "paper policy (2-day window, 10-day frequency)",
    )

    # A drift-triggered variant: same window, retrain early when a day's
    # median error exceeds 25%.
    run_policy(
        log,
        RetrainPolicy(window_days=2, frequency_days=10, drift_threshold_pct=25.0),
        "drift-triggered (retrain when median error > 25%)",
    )


if __name__ == "__main__":
    main()
