"""Quickstart: learn cost models from a workload and compare with the default.

This walks the full Cleo loop on a small synthetic cluster:

1. generate a recurring-job workload (3 days);
2. plan + execute it with the default optimizer (this is "production");
3. train the learned cost models from the run logs (the feedback loop);
4. compare learned vs default cost estimates on the held-out day.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cardinality import CardinalityEstimator
from repro.common.stats import median_error_pct, pearson
from repro.core import CleoTrainer, evaluate_predictor_on_log, evaluate_store_on_log
from repro.cost import DefaultCostModel
from repro.execution.hardware import ClusterSpec
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner


def main() -> None:
    # 1. A cluster and its workload: recurring templates over drifting inputs.
    cluster = ClusterSpec(name="democluster")
    config = ClusterWorkloadConfig(
        cluster_name="democluster", n_tables=10, n_fragments=18, n_templates=30, seed=42
    )
    generator = WorkloadGenerator(config)

    # 2. "Production": plan with the default cost model, execute, log.
    runner = WorkloadRunner(cluster=cluster, seed=42, keep_plans=True)
    log = runner.run_days(generator, days=range(1, 4))
    print(f"executed {len(log)} jobs / {log.operator_count} operators over 3 days")

    # 3. The feedback loop: individual models on days 1-2, combined on day 2.
    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
    print(f"trained {predictor.model_count} models "
          f"({predictor.memory_bytes / 1024:.0f} KiB in memory)")

    # 4. Evaluate on the held-out day 3.
    test = log.filter(days=[3])
    print("\nper-model accuracy and coverage on day 3:")
    for kind, quality in evaluate_store_on_log(predictor.store, test).items():
        print(f"  {quality.name:<20} corr={quality.pearson:5.2f} "
              f"median_err={quality.median_error_pct:6.1f}%  "
              f"coverage={quality.coverage_pct:5.1f}%")
    combined = evaluate_predictor_on_log(predictor, test)
    print(f"  {'combined':<20} corr={combined.pearson:5.2f} "
          f"median_err={combined.median_error_pct:6.1f}%  coverage=100.0%")

    # Baseline: the default cost model over the same operators.
    default = DefaultCostModel()
    estimator = CardinalityEstimator()
    costs, actuals = [], []
    for job in test:
        plan = runner.plans[job.job_id]
        estimator.reset()
        for op, record in zip(plan.walk(), job.operators):
            costs.append(default.operator_cost(op, estimator))
            actuals.append(record.actual_latency)
    print(f"\n  {'default (heuristic)':<20} corr={pearson(costs, actuals):5.2f} "
          f"median_err={median_error_pct(costs, actuals):6.1f}%  coverage=100.0%")


if __name__ == "__main__":
    main()
