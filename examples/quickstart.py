"""Quickstart: train, serve, and query cost models through ``CleoService``.

This walks the full Cleo loop on a small synthetic cluster:

1. generate a recurring-job workload (3 days);
2. plan + execute it with the default optimizer (this is "production");
3. train the learned cost models from the run logs with one
   ``CleoService.train`` call (the feedback loop);
4. serve the held-out day through the batched prediction path and compare
   with the default heuristic model;
5. explain a few predictions and round-trip the service through a model
   file (the paper's "models can be served from a text file").

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cardinality import CardinalityEstimator
from repro.common.stats import median_error_pct, pearson
from repro.core import evaluate_store_on_log
from repro.cost import DefaultCostModel
from repro.execution.hardware import ClusterSpec
from repro.serving import CleoService
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner


def main() -> None:
    # 1. A cluster and its workload: recurring templates over drifting inputs.
    cluster = ClusterSpec(name="democluster")
    config = ClusterWorkloadConfig(
        cluster_name="democluster", n_tables=10, n_fragments=18, n_templates=30, seed=42
    )
    generator = WorkloadGenerator(config)

    # 2. "Production": plan with the default cost model, execute, log.
    runner = WorkloadRunner(cluster=cluster, seed=42, keep_plans=True)
    log = runner.run_days(generator, days=range(1, 4))
    print(f"executed {len(log)} jobs / {log.operator_count} operators over 3 days")

    # 3. The feedback loop, behind the serving façade: individual models on
    #    days 1-2, the combined meta-model on day 2.
    service = CleoService.train(log, individual_days=[1, 2], combined_days=[2])
    print(f"trained {service.model_count} models "
          f"({service.memory_bytes / 1024:.0f} KiB in memory)")

    # 4. Serve the held-out day 3 through the batched path.
    test = log.filter(days=[3])
    records = list(test.operator_records())
    predicted = service.predict_records(records)
    actual = [r.actual_latency for r in records]
    stats = service.stats()
    print(f"\nserved {len(records)} operators with {stats.model_calls} vectorized "
          f"model calls ({stats.in_batch_reuses} deduplicated in-batch)")
    print("\nper-model accuracy and coverage on day 3:")
    for kind, quality in evaluate_store_on_log(service.store, test).items():
        print(f"  {quality.name:<20} corr={quality.pearson:5.2f} "
              f"median_err={quality.median_error_pct:6.1f}%  "
              f"coverage={quality.coverage_pct:5.1f}%")
    print(f"  {'combined':<20} corr={pearson(list(predicted), actual):5.2f} "
          f"median_err={median_error_pct(list(predicted), actual):6.1f}%  "
          f"coverage=100.0%")

    # Baseline: the default cost model over the same operators.
    default = DefaultCostModel()
    estimator = CardinalityEstimator()
    costs, actuals = [], []
    for job in test:
        plan = runner.plans[job.job_id]
        estimator.reset()
        for op, record in zip(plan.walk(), job.operators):
            costs.append(default.operator_cost(op, estimator))
            actuals.append(record.actual_latency)
    print(f"  {'default (heuristic)':<20} corr={pearson(costs, actuals):5.2f} "
          f"median_err={median_error_pct(costs, actuals):6.1f}%  coverage=100.0%")

    # 5. Explanations and the model-file round trip.
    print("\nthree predictions explained:")
    for record in records[:3]:
        explanation = service.explain(record.features, record.signatures)
        print(f"  {record.op_type:<16} {explanation.describe()}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cleo_models.json"
        service.save(path)
        reloaded = CleoService.load(path)
        same = float(reloaded.predict_records(records[:50]).sum())
        print(f"\nmodel file round trip: {path.stat().st_size / 1024:.0f} KiB, "
              f"first-50 cost sum {same:.3f} (identical={same == float(predicted[:50].sum())})")


if __name__ == "__main__":
    main()
