"""Tour of the cost-model applications from Section 6.7 of the paper.

Once Cleo's models are trained, they answer more questions than "which
plan": this example exercises each application the paper names as a
cost-model use case on one trained workload —

1. performance prediction with calibrated confidence intervals;
2. SLO-driven resource allocation (fewest containers under a deadline);
3. task-runtime estimates driving a cluster scheduler;
4. work-weighted query progress estimation;
5. what-if analysis: materializing a common subexpression, input growth;
6. machine-SKU advice (Section 5.2's "VM instance types" hook).

Run:  python examples/applications_tour.py
"""

from __future__ import annotations

from repro.applications import (
    JobPerformancePredictor,
    MachineSku,
    ProgressEstimator,
    ResourceAllocator,
    SchedulingStudy,
    SkuAdvisor,
    WhatIfAnalyzer,
    evaluate_stage_count_baseline,
    find_materialization_candidates,
)
from repro.cardinality import CardinalityEstimator
from repro.core import CleoCostModel, CleoTrainer
from repro.cost import DefaultCostModel
from repro.execution.hardware import ClusterSpec
from repro.execution.trace import trace_job
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner
from repro.workload.templates import instantiate


def main() -> None:
    # -- Train Cleo on a small synthetic cluster (as in quickstart) ------- #
    cluster = ClusterSpec(name="appcluster")
    config = ClusterWorkloadConfig(
        cluster_name="appcluster", n_tables=8, n_fragments=14, n_templates=24, seed=7
    )
    generator = WorkloadGenerator(config)
    runner = WorkloadRunner(cluster=cluster, seed=7, keep_plans=True)
    log = runner.run_days(generator, days=range(1, 4))
    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
    print(f"trained {predictor.model_count} models from {len(log)} jobs\n")

    day3 = list(log.filter(days=[3]))
    example_job = day3[0]
    example_plan = runner.plans[example_job.job_id]

    # -- 1. Performance prediction --------------------------------------- #
    print("== 1. performance prediction ==")
    perf = JobPerformancePredictor(predictor, CardinalityEstimator(runner.estimator_config))
    calibration = log.filter(days=[3])  # held out from training days 1-2
    perf.calibrate_jobs(runner.plans, calibration)
    interval = perf.predict_interval(example_plan, coverage=0.9)
    print(f"job {example_job.job_id}:")
    print(f"  predicted latency: {interval.point:.1f}s "
          f"(90% interval [{interval.low:.1f}, {interval.high:.1f}])")
    print(f"  actual latency:    {example_job.latency_seconds:.1f}s "
          f"(covered: {interval.contains(example_job.latency_seconds)})\n")

    # -- 2. SLO-driven resource allocation -------------------------------- #
    print("== 2. resource allocation under a deadline ==")
    spec = generator.jobs_for_day(3)[0]
    logical = instantiate(spec, generator.catalog_for_day(3))
    allocator = ResourceAllocator(
        predictor,
        CardinalityEstimator(runner.estimator_config),
        base_config=PlannerConfig(
            max_partitions=512, partition_strategy=AnalyticalStrategy()
        ),
    )
    wide_open = allocator.tradeoff_curve(logical, budgets=[512])[0].predicted_latency
    decision = allocator.allocate(logical, deadline_seconds=wide_open * 1.5)
    print(decision.describe())
    print()

    # -- 3. Task-runtime estimates for scheduling -------------------------- #
    print("== 3. scheduling with learned task-runtime estimates ==")
    plans = {job.job_id: runner.plans[job.job_id] for job in day3[:16]}
    study = SchedulingStudy(
        simulator=runner.simulator,
        estimator=CardinalityEstimator(runner.estimator_config),
        total_containers=16,
        policy="sjf",
    )
    results = study.run(
        plans,
        {"learned": CleoCostModel(predictor), "default": DefaultCostModel()},
    )
    oracle = study.oracle(plans)
    print(f"  {'estimator':<10} {'makespan':>10} {'mean JCT':>10}")
    for name, outcome in {**results, "oracle": oracle}.items():
        print(f"  {name:<10} {outcome.makespan:9.1f}s "
              f"{outcome.mean_job_completion:9.1f}s")
    print()

    # -- 4. Query progress estimation -------------------------------------- #
    print("== 4. progress estimation ==")
    trace = trace_job(runner.simulator, example_plan)
    estimator = ProgressEstimator(perf.predict(example_plan))
    weighted = estimator.evaluate(trace)
    baseline = evaluate_stage_count_baseline(trace)
    print(f"  work-weighted indicator: mean |error| {weighted.mean_abs_error:5.3f}")
    print(f"  stage-count baseline:    mean |error| {baseline.mean_abs_error:5.3f}")
    halfway = trace.total_latency / 2
    print(f"  at t={halfway:.0f}s: {100 * estimator.progress_at(trace, halfway):.0f}% done, "
          f"~{estimator.remaining_seconds(trace, halfway):.0f}s remaining\n")

    # -- 5. What-if analysis ------------------------------------------------ #
    print("== 5. what-if analysis ==")
    logical_plans = {
        spec.job_id: instantiate(spec, generator.catalog_for_day(3))
        for spec in generator.jobs_for_day(3)[:10]
    }
    analyzer = WhatIfAnalyzer(predictor, CardinalityEstimator(runner.estimator_config))
    candidates = find_materialization_candidates(logical_plans, min_nodes=3)
    if candidates:
        top = candidates[0]
        print(f"  top materialization candidate: {top.describe()}")
        outcomes = analyzer.evaluate_materialization(logical_plans, top)
        for outcome in outcomes[:4]:
            print(f"    {outcome.describe()}")
    first_job_id, first_logical = next(iter(logical_plans.items()))
    base_table = next(
        node.table for node in first_logical.walk() if node.table is not None
    )
    print(f"  growth what-if on {base_table}:")
    for factor, outcome in analyzer.evaluate_growth(
        first_logical, base_table, [2.0, 4.0], job_id=first_job_id
    ):
        print(f"    x{factor:.0f}: predicted latency "
              f"{outcome.variant.latency_seconds:8.1f}s ({outcome.latency_delta_pct:+.1f}%)")
    print()

    # -- 6. Machine-SKU advice (Section 5.2's "VM instance types") ---------- #
    print("== 6. machine-SKU advice ==")
    skus = [
        MachineSku(name="standard_d8", speed_factor=1.0, price_per_container_hour=0.10),
        MachineSku(name="compute_f16", speed_factor=1.8, price_per_container_hour=0.21),
        MachineSku(name="burst_b4", speed_factor=0.6, price_per_container_hour=0.045),
    ]
    sku_advisor = SkuAdvisor(predictor, CardinalityEstimator(runner.estimator_config))
    standard_latency = sku_advisor.estimate(example_plan, skus[0]).latency_seconds
    recommendation = sku_advisor.recommend(
        example_plan, skus, deadline_seconds=standard_latency * 0.9
    )
    print(recommendation.describe())
    frontier = ", ".join(e.sku.name for e in recommendation.pareto_frontier)
    print(f"  pareto frontier: {frontier}")


if __name__ == "__main__":
    main()
