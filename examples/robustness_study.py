"""Robustness study: how long do learned cost models stay accurate?

Reproduces the Figure 14 protocol: train once (days 1-2 individual models,
day 3 combined), then watch coverage, median error, and correlation as the
test window slides out to four weeks — the measurement behind the paper's
"retrain every ~10 days" recommendation.

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

from repro.core import CleoTrainer, evaluate_predictor_on_log, evaluate_store_on_log
from repro.core.config import ModelKind
from repro.execution.hardware import ClusterSpec
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner

WINDOWS = (2, 7, 14, 21, 28)


def main() -> None:
    cluster = ClusterSpec(name="democluster")
    generator = WorkloadGenerator(
        ClusterWorkloadConfig(
            cluster_name="democluster", n_tables=8, n_fragments=14, n_templates=20, seed=3
        )
    )
    runner = WorkloadRunner(cluster=cluster, seed=3)
    horizon = max(WINDOWS) + 3
    print(f"running {horizon} days of workload ...")
    log = runner.run_days(generator, days=range(1, horizon + 1))

    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[3])
    print(f"trained on days 1-3: {predictor.model_count} models\n")

    header = f"{'window':>7} | " + " | ".join(
        f"{kind.value:>20}" for kind in ModelKind
    ) + f" | {'combined':>20}"
    print(header)
    print("-" * len(header))
    for window in WINDOWS:
        test = log.filter(days=[3 + window])
        cells = []
        for kind, quality in evaluate_store_on_log(predictor.store, test).items():
            cells.append(
                f"{quality.coverage_pct:5.1f}% /{quality.median_error_pct:6.1f}%"
            )
        combined = evaluate_predictor_on_log(predictor, test)
        cells.append(f"100.0% /{combined.median_error_pct:6.1f}%")
        print(f"{window:>5}d  | " + " | ".join(f"{c:>20}" for c in cells))
    print("\ncells are: coverage % / median error %")


if __name__ == "__main__":
    main()
