"""Resource-aware planning: find latency- and resource-optimal plans.

Demonstrates Section 5 of the paper: after training Cleo, the optimizer is
re-run with the learned cost models plus partition exploration, and the new
plans are executed on the simulator to measure real latency / CPU effects.
Also compares the exploration strategies (heuristic, geometric sampling,
analytical) on cost and model lookups.

Run:  python examples/resource_optimization.py
"""

from __future__ import annotations

from repro.cardinality import CardinalityEstimator
from repro.core import CleoCostModel, CleoTrainer
from repro.execution.hardware import ClusterSpec
from repro.optimizer import (
    AnalyticalStrategy,
    PlannerConfig,
    QueryPlanner,
    SamplingStrategy,
)
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner
from repro.workload.templates import instantiate


def main() -> None:
    cluster = ClusterSpec(name="democluster")
    generator = WorkloadGenerator(
        ClusterWorkloadConfig(
            cluster_name="democluster", n_tables=10, n_fragments=18, n_templates=30, seed=7
        )
    )
    runner = WorkloadRunner(cluster=cluster, seed=7)
    log = runner.run_days(generator, days=range(1, 4))
    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])

    estimator = CardinalityEstimator()
    strategies = {
        "default heuristic": None,
        "cleo + geometric sampling": SamplingStrategy(scheme="geometric", skip_coefficient=2.0),
        "cleo + analytical": AnalyticalStrategy(),
    }

    catalog = generator.catalog_for_day(3)
    jobs = generator.jobs_for_day(3)[:25]
    print(f"replanning {len(jobs)} day-3 jobs under each strategy\n")

    baseline_latency = baseline_cpu = None
    for name, strategy in strategies.items():
        if strategy is None:
            planner = runner._planner  # the production default planner
        else:
            cost_model = CleoCostModel(predictor)
            cost_model.reset_lookup_count()
            planner = QueryPlanner(
                cost_model, estimator, PlannerConfig(partition_strategy=strategy)
            )
        total_latency = total_cpu = 0.0
        for job in jobs:
            logical = instantiate(job, catalog)
            planner.jitter_salt = job.job_id
            plan = planner.plan(logical).plan
            total_latency += runner.simulator.expected_job_latency(plan)
            total_cpu += runner.simulator.expected_cpu_seconds(plan)
        line = (
            f"{name:<28} total latency {total_latency/60:7.1f} min, "
            f"total CPU {total_cpu/3600:7.1f} h"
        )
        if baseline_latency is None:
            baseline_latency, baseline_cpu = total_latency, total_cpu
        else:
            line += (
                f"  ({100*(1-total_latency/baseline_latency):+.1f}% latency, "
                f"{100*(1-total_cpu/baseline_cpu):+.1f}% CPU vs default)"
            )
        if strategy is not None:
            line += f"  [{planner.cost_model.lookup_count:,} model lookups]"
        print(line)


if __name__ == "__main__":
    main()
