"""Why fixing cardinalities is not enough (Section 6.4 of the paper).

Compares four configurations on the same workload: the default cost model,
the default model fed perfect cardinalities, the default model fed
CardLearner's learned cardinalities, and Cleo — showing that cost estimation
errors in big data systems survive perfect cardinalities.

Run:  python examples/cardinality_study.py
"""

from __future__ import annotations

import numpy as np

from repro.cardinality import CardinalityEstimator, CardLearner, PerfectCardinalityEstimator
from repro.common.stats import median_error_pct, pearson
from repro.core import CleoTrainer
from repro.cost import DefaultCostModel
from repro.execution.hardware import ClusterSpec
from repro.workload import ClusterWorkloadConfig, WorkloadGenerator, WorkloadRunner


def main() -> None:
    cluster = ClusterSpec(name="democluster")
    generator = WorkloadGenerator(
        ClusterWorkloadConfig(
            cluster_name="democluster", n_tables=8, n_fragments=14, n_templates=24, seed=11
        )
    )
    runner = WorkloadRunner(cluster=cluster, seed=11, keep_plans=True)
    log = runner.run_days(generator, days=range(1, 4))
    predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])

    # CardLearner trains on the executed plans of the training days.
    card_learner = CardLearner(base=CardinalityEstimator())
    for job in log.filter(days=[1, 2]):
        card_learner.observe_plan(runner.plans[job.job_id])
    print(f"CardLearner fitted {card_learner.fit()} per-template Poisson models")

    default = DefaultCostModel()
    test = log.filter(days=[3])
    actuals = np.array([r.actual_latency for r in test.operator_records()])

    def default_costs(estimator) -> np.ndarray:
        costs = []
        for job in test:
            plan = runner.plans[job.job_id]
            estimator.reset()
            for op in plan.walk():
                costs.append(default.operator_cost(op, estimator))
        return np.array(costs)

    cleo_costs = predictor.predict_records(list(test.operator_records()))

    rows = [
        ("default cost model", default_costs(CardinalityEstimator())),
        ("default + CardLearner cards", default_costs(card_learner)),
        ("default + PERFECT cards", default_costs(PerfectCardinalityEstimator())),
        ("Cleo (learned costs)", cleo_costs),
    ]
    print(f"\n{'configuration':<30} {'pearson':>8} {'median error':>13}")
    for name, costs in rows:
        print(
            f"{name:<30} {pearson(costs, actuals):8.3f} "
            f"{median_error_pct(costs, actuals):12.1f}%"
        )
    print(
        "\nconclusion: even perfect cardinalities leave a wide cost gap; "
        "the cost model itself must be learned."
    )


if __name__ == "__main__":
    main()
