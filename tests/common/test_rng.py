"""Tests for the named-RNG derivation tree."""

from __future__ import annotations

from repro.common.rng import RngFactory, derive_rng


class TestDeriveRng:
    def test_same_names_same_stream(self):
        a = derive_rng(7, "x").normal(size=5)
        b = derive_rng(7, "x").normal(size=5)
        assert (a == b).all()

    def test_different_names_different_streams(self):
        a = derive_rng(7, "x").normal(size=5)
        b = derive_rng(7, "y").normal(size=5)
        assert not (a == b).all()

    def test_different_seeds_different_streams(self):
        a = derive_rng(1, "x").normal(size=5)
        b = derive_rng(2, "x").normal(size=5)
        assert not (a == b).all()


class TestRngFactory:
    def test_child_stability_across_call_order(self):
        factory = RngFactory(3)
        first = factory.child("sim", "noise").random()
        factory.child("unrelated").random()  # extra draw must not shift others
        second = RngFactory(3).child("sim", "noise").random()
        assert first == second

    def test_lognormal_positive(self):
        factory = RngFactory(5)
        assert factory.lognormal(0.5, "m") > 0

    def test_lognormal_zero_sigma_is_one(self):
        assert RngFactory(5).lognormal(0.0, "m") == 1.0

    def test_spawn_changes_namespace(self):
        root = RngFactory(9)
        spawned = root.spawn("sub")
        assert root.child("k").random() != spawned.child("k").random()

    def test_spawn_deterministic(self):
        a = RngFactory(9).spawn("sub").child("k").random()
        b = RngFactory(9).spawn("sub").child("k").random()
        assert a == b
