"""Tests for deterministic pipeline chaos (run-log poison, crash injection).

Two contracts:

* **Determinism** — poison and crash decisions are pure functions of the
  policy seed and the content keys (day, job id, operator index / crash
  point), so every chaos run replays bitwise.
* **Shape** — poisoning preserves record validity invariants (frozen
  dataclasses, non-negative static fields) while planting exactly the
  corruption kinds the training gate is contracted to excise.
"""

from __future__ import annotations

import math
from dataclasses import FrozenInstanceError, replace

import pytest

from repro.common.chaos import (
    CRASH_POINTS,
    POISON_KINDS,
    POISON_SCENARIOS,
    CrashPolicy,
    PipelineChaos,
    PoisonPolicy,
    RunLogPoisoner,
)
from repro.common.errors import InjectedCrashError, ValidationError


# ------------------------------------------------------------------ #
# PoisonPolicy
# ------------------------------------------------------------------ #


class TestPoisonPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nan_rate": -0.1},
            {"outlier_rate": 1.5},
            {"nan_rate": 0.6, "duplicate_rate": 0.6},  # sum > 1
            {"outlier_factor": 1.0},
            {"drop_rate": 2.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            PoisonPolicy(**kwargs)

    def test_noop_detection(self):
        assert PoisonPolicy().is_noop
        assert not PoisonPolicy(nan_rate=0.01).is_noop

    def test_policy_is_frozen(self):
        with pytest.raises(FrozenInstanceError):
            PoisonPolicy().nan_rate = 0.5

    def test_scenarios_are_named_consistently(self):
        for name, policy in POISON_SCENARIOS.items():
            assert policy.name == name
        assert POISON_SCENARIOS["clean"].is_noop
        assert not POISON_SCENARIOS["poisoned_runlog"].is_noop

    def test_describe(self):
        text = PoisonPolicy(name="x", nan_rate=0.1, days=(1, 3)).describe()
        assert "nan=10%" in text and "[1, 3]" in text


# ------------------------------------------------------------------ #
# RunLogPoisoner
# ------------------------------------------------------------------ #


class TestRunLogPoisoner:
    @pytest.fixture(scope="class")
    def policy(self):
        return replace(POISON_SCENARIOS["poisoned_runlog"], days=(1, 2))

    def test_decide_is_pure(self, policy):
        a = RunLogPoisoner(policy)
        b = RunLogPoisoner(policy)
        for day in (1, 2):
            for op in range(50):
                assert a.decide(day, "job-7", op) == b.decide(day, "job-7", op)

    def test_decide_respects_day_scope(self, policy):
        poisoner = RunLogPoisoner(policy)
        assert all(
            poisoner.decide(9, f"job-{j}", op) is None
            for j in range(20)
            for op in range(10)
        )

    def test_decide_kinds_are_known(self, policy):
        poisoner = RunLogPoisoner(policy)
        kinds = {
            poisoner.decide(1, f"job-{j}", op)
            for j in range(100)
            for op in range(10)
        }
        kinds.discard(None)
        assert kinds and kinds <= set(POISON_KINDS)

    def test_seed_rekeys_decisions(self, policy):
        a = RunLogPoisoner(policy)
        b = RunLogPoisoner(replace(policy, seed=policy.seed + 1))
        decisions_a = [a.decide(1, f"j{j}", 0) for j in range(200)]
        decisions_b = [b.decide(1, f"j{j}", 0) for j in range(200)]
        assert decisions_a != decisions_b

    def test_poison_is_replayable_bitwise(self, policy, tiny_bundle):
        log_a, counts_a = RunLogPoisoner(policy).poison(tiny_bundle.log)
        log_b, counts_b = RunLogPoisoner(policy).poison(tiny_bundle.log)
        assert counts_a == counts_b
        for job_a, job_b in zip(log_a.jobs, log_b.jobs):
            # repr-compare: dataclass == is False for planted NaN latencies.
            assert repr(job_a) == repr(job_b)

    def test_poison_counts_match_planted_corruption(self, policy, tiny_bundle):
        poisoned, counts = RunLogPoisoner(policy).poison(tiny_bundle.log)
        assert counts["total"] == sum(counts[k] for k in POISON_KINDS)
        assert counts["total"] > 0
        nans = sum(
            1
            for job in poisoned.jobs
            for op in job.operators
            if math.isnan(op.actual_latency)
        )
        assert nans == counts["nan"]
        n_before = sum(len(j.operators) for j in tiny_bundle.log.jobs)
        n_after = sum(len(j.operators) for j in poisoned.jobs)
        assert n_after - n_before == counts["duplicate"] - counts["drop"]

    def test_duplicates_are_planted_adjacent(self, tiny_bundle):
        policy = PoisonPolicy(name="dup", duplicate_rate=0.2, days=(1,))
        poisoned, counts = RunLogPoisoner(policy).poison(tiny_bundle.log)
        assert counts["duplicate"] > 0
        adjacent = sum(
            1
            for job in poisoned.jobs
            for a, b in zip(job.operators, job.operators[1:])
            if a == b
        )
        assert adjacent >= counts["duplicate"]

    def test_outliers_exceed_sane_bound(self, tiny_bundle):
        from repro.features.table import MAX_SANE_LATENCY_S

        policy = PoisonPolicy(name="out", outlier_rate=0.2, days=(1,))
        poisoned, counts = RunLogPoisoner(policy).poison(tiny_bundle.log)
        assert counts["outlier"] > 0
        insane = sum(
            1
            for job in poisoned.jobs
            for op in job.operators
            if op.actual_latency > MAX_SANE_LATENCY_S
        )
        assert insane == counts["outlier"]

    def test_clean_policy_is_identity(self, tiny_bundle):
        poisoned, counts = RunLogPoisoner(POISON_SCENARIOS["clean"]).poison(
            tiny_bundle.log
        )
        assert counts["total"] == 0
        for job_a, job_b in zip(tiny_bundle.log.jobs, poisoned.jobs):
            assert job_a == job_b


# ------------------------------------------------------------------ #
# CrashPolicy / PipelineChaos
# ------------------------------------------------------------------ #


class TestPipelineChaos:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"points": ("nowhere",)},
            {"rate": -0.5},
            {"rate": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            CrashPolicy(**kwargs)

    def test_decide_is_pure(self):
        policy = CrashPolicy(name="c", points=CRASH_POINTS, rate=0.5)
        a = PipelineChaos(policy)
        b = PipelineChaos(policy)
        for point in CRASH_POINTS:
            for day in range(10):
                assert a.decide(point, day) == b.decide(point, day)

    def test_check_raises_once_per_point_and_day(self):
        chaos = PipelineChaos(
            CrashPolicy(name="c", points=("pre_publish",), days=(4,))
        )
        with pytest.raises(InjectedCrashError):
            chaos.check("pre_publish", 4)
        # The restarted process retries the same point: it must pass.
        chaos.check("pre_publish", 4)
        assert chaos.stats() == {"pre_publish@4": 1, "total": 1}

    def test_check_scopes_to_points_and_days(self):
        chaos = PipelineChaos(
            CrashPolicy(name="c", points=("pre_publish",), days=(4,))
        )
        chaos.check("retrain_start", 4)
        chaos.check("pre_publish", 5)
        assert chaos.stats() == {"total": 0}

    def test_fractional_rate_fires_on_some_days(self):
        policy = CrashPolicy(name="c", points=("retrain_start",), rate=0.5)
        chaos = PipelineChaos(policy)
        fired = [day for day in range(40) if chaos.decide("retrain_start", day)]
        assert 0 < len(fired) < 40
