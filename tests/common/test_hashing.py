"""Tests for stable hashing and deterministic draws."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given

from repro.common.hashing import (
    combine_hashes,
    combine_hashes_unordered,
    stable_hash,
    stable_unit_float,
)

_MASK64 = (1 << 64) - 1


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.0) == stable_hash("a", 1, 2.0)

    def test_distinct_inputs_distinct_hashes(self):
        values = {stable_hash("x", i) for i in range(1000)}
        assert len(values) == 1000

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_integer_float_canonicalization(self):
        # 2.0 and 2 canonicalize identically (cardinalities may be either).
        assert stable_hash(2.0) == stable_hash(2)

    def test_frozenset_order_independent(self):
        assert stable_hash(frozenset({"a", "b"})) == stable_hash(frozenset({"b", "a"}))

    def test_tuple_order_dependent(self):
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))

    @given(st.lists(st.integers(min_value=0, max_value=_MASK64), min_size=1, max_size=20))
    def test_within_64_bits(self, values):
        assert 0 <= combine_hashes(values) <= _MASK64


class TestCombineHashes:
    def test_order_sensitive(self):
        a, b = stable_hash("a"), stable_hash("b")
        assert combine_hashes([a, b]) != combine_hashes([b, a])

    def test_unordered_is_order_insensitive(self):
        a, b, c = (stable_hash(x) for x in "abc")
        assert combine_hashes_unordered([a, b, c]) == combine_hashes_unordered([c, a, b])

    def test_unordered_multiset_sensitivity(self):
        a, b = stable_hash("a"), stable_hash("b")
        assert combine_hashes_unordered([a, a, b]) != combine_hashes_unordered([a, b, b])

    def test_empty(self):
        assert combine_hashes([]) == combine_hashes([])


class TestStableUnitFloat:
    def test_in_unit_interval(self):
        for i in range(200):
            assert 0.0 <= stable_unit_float("u", i) < 1.0

    def test_deterministic(self):
        assert stable_unit_float("k", 1) == stable_unit_float("k", 1)

    def test_roughly_uniform(self):
        values = [stable_unit_float("uniform", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    @given(st.text(max_size=30), st.integers())
    def test_never_out_of_range(self, s, i):
        assert 0.0 <= stable_unit_float(s, i) < 1.0
