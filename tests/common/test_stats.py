"""Tests for the statistics helpers behind the paper's metrics."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from repro.common.stats import (
    Cdf,
    error_ratio,
    geometric_partition_samples,
    median_error_pct,
    pearson,
    percentile_error_pct,
    relative_error_pct,
    summarize_ratio_quality,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])

    def test_short_series(self):
        assert pearson([1.0], [2.0]) == 0.0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=50),
    )
    def test_bounded(self, xs):
        ys = [x * 2 + 3 for x in xs]
        value = pearson(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestErrorMetrics:
    def test_median_error_pct_exact(self):
        predicted = np.array([110.0, 90.0, 200.0])
        actual = np.array([100.0, 100.0, 100.0])
        assert median_error_pct(predicted, actual) == pytest.approx(10.0)

    def test_percentile_error(self):
        predicted = np.full(100, 150.0)
        actual = np.full(100, 100.0)
        assert percentile_error_pct(predicted, actual, 95) == pytest.approx(50.0)

    def test_empty_is_nan(self):
        assert np.isnan(median_error_pct(np.array([]), np.array([])))

    def test_relative_error_nonnegative(self):
        errs = relative_error_pct(np.array([1.0, -5.0]), np.array([2.0, 5.0]))
        assert (errs >= 0).all()

    def test_error_ratio_guards_zero(self):
        ratios = error_ratio(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(ratios).all()

    def test_summary_bundle_keys(self):
        summary = summarize_ratio_quality(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert set(summary) == {"pearson", "median_error_pct", "p95_error_pct", "central_mass"}


class TestCdf:
    def test_monotone_nondecreasing(self):
        cdf = Cdf.of(np.random.default_rng(0).lognormal(0, 1, 500))
        fractions = np.array(cdf.fractions)
        assert (np.diff(fractions) >= 0).all()

    def test_bounds(self):
        cdf = Cdf.of([0.5, 1.0, 2.0])
        assert 0.0 <= min(cdf.fractions) and max(cdf.fractions) <= 1.0

    def test_at_interpolates(self):
        cdf = Cdf.of([1.0] * 10)
        assert cdf.at(2.0) == pytest.approx(1.0)
        assert cdf.at(0.5) == pytest.approx(0.0)

    def test_central_mass_perfect_predictions(self):
        cdf = Cdf.of(np.ones(100))
        assert cdf.central_mass() == pytest.approx(1.0)

    def test_empty_sample(self):
        cdf = Cdf.of([])
        assert max(cdf.fractions) == 0.0

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=100))
    def test_property_monotone(self, values):
        fractions = np.array(Cdf.of(values).fractions)
        assert (np.diff(fractions) >= -1e-12).all()


class TestGeometricSamples:
    def test_starts_one_two(self):
        samples = geometric_partition_samples(100, 2.0)
        assert samples[:2] == [1, 2]

    def test_strictly_increasing(self):
        samples = geometric_partition_samples(3000, 2.0)
        assert all(b > a for a, b in zip(samples, samples[1:]))

    def test_respects_max(self):
        samples = geometric_partition_samples(500, 0.5)
        assert max(samples) <= 500

    def test_larger_skip_means_more_samples(self):
        sparse = geometric_partition_samples(3000, 0.5)
        dense = geometric_partition_samples(3000, 5.0)
        assert len(dense) > len(sparse)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            geometric_partition_samples(0, 1.0)
        with pytest.raises(ValueError):
            geometric_partition_samples(10, 0.0)

    def test_max_one(self):
        assert geometric_partition_samples(1, 2.0) == [1]
