"""Learned-cost skeleton replay parity (optimizer.skeleton + replan).

The skeleton replay under a learned cost model — and the fleet replanner's
lockstep batching on top of it — must be *bitwise* identical to the full
``QueryPlanner`` + ``CleoCostModel`` search: same plan shapes, same
partition counts, same estimated costs, same candidate counts, and (with
the prediction cache disabled, the optimizer-experiment default) the same
per-prediction model-lookup accounting.  These tests pin that contract over
the trained tiny bundle, over randomized ad-hoc templates, for every
partition strategy family, and through the sharded serving tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.errors import OptimizationError
from repro.core.cost_model import CleoCostModel
from repro.optimizer.partition import (
    AnalyticalStrategy,
    ExhaustiveStrategy,
    SamplingStrategy,
)
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.optimizer.replan import FleetReplanner, ReplanJob, replan_jobs
from repro.optimizer.skeleton import SkeletonPlanner, supports_fast_path
from repro.workload.templates import instantiate


def _fingerprint(planned):
    return (
        tuple((op.op_type.value, op.partition_count) for op in planned.plan.walk()),
        planned.estimated_cost,
        planned.candidates_considered,
    )


def _specs(bundle, limit=None, instances=1):
    """(template_id, day, logical, salt) per instance of the test day.

    ``instances > 1`` replicates every job under distinct jitter salts — the
    recurring-fleet shape the lockstep driver batches over (several live
    instances of one ``(template_id, day)`` shape with different numbers).
    """
    day = bundle.log.days[-1]
    catalog = bundle.generator.catalog_for_day(day)
    specs = bundle.generator.jobs_for_day(day)
    if limit is not None:
        specs = specs[:limit]
    out = []
    for spec in specs:
        logical = instantiate(spec, catalog)
        for k in range(instances):
            salt = spec.job_id if k == 0 else f"{spec.job_id}/rep{k}"
            out.append((spec.template.template_id, spec.day, logical, salt))
    return out

def _reference(jobs, model, config, predictor):
    planner = QueryPlanner(model, CardinalityEstimator(), config)
    predictor.reset_lookup_count()
    fps = []
    for _template_id, _day, logical, salt in jobs:
        planner.jitter_salt = salt
        fps.append(_fingerprint(planner.plan(logical)))
    return fps, predictor.lookup_count


def _replay(jobs, model, config, predictor):
    planner = SkeletonPlanner(model, CardinalityEstimator(), config)
    predictor.reset_lookup_count()
    fps = [
        _fingerprint(planner.replan_job(template_id, day, logical, salt))
        for template_id, day, logical, salt in jobs
    ]
    return fps, predictor.lookup_count


def _fleet(jobs, model, config, predictor):
    requests = [
        ReplanJob(salt, template_id, day, logical)
        for template_id, day, logical, salt in jobs
    ]
    predictor.reset_lookup_count()
    planned = replan_jobs(requests, model, CardinalityEstimator(), config)
    return [_fingerprint(p) for p in planned], predictor.lookup_count


class TestReplayParity:
    def test_structural_replay_matches_reference(self, tiny_bundle, tiny_predictor):
        jobs = _specs(tiny_bundle)
        config = PlannerConfig()
        ref_fps, ref_lookups = _reference(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        rep_fps, rep_lookups = _replay(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        assert ref_fps == rep_fps
        assert ref_lookups == rep_lookups

    def test_scalar_serving_replay_matches_reference(
        self, tiny_bundle, tiny_predictor
    ):
        """batched=False: the replay prices one service round-trip at a time."""
        jobs = _specs(tiny_bundle, limit=8)
        config = PlannerConfig()
        ref_fps, ref_lookups = _reference(
            jobs, CleoCostModel(tiny_predictor, batched=False), config, tiny_predictor
        )
        rep_fps, rep_lookups = _replay(
            jobs, CleoCostModel(tiny_predictor, batched=False), config, tiny_predictor
        )
        assert ref_fps == rep_fps
        assert ref_lookups == rep_lookups

    @pytest.mark.parametrize(
        "strategy,max_partitions",
        [
            (SamplingStrategy(scheme="geometric"), 3000),
            (SamplingStrategy(scheme="uniform", n_samples=8), 500),
            (ExhaustiveStrategy(), 24),
            (AnalyticalStrategy(), 3000),
        ],
        ids=["geometric", "uniform", "exhaustive", "analytical"],
    )
    def test_partition_strategies_identical(
        self, tiny_bundle, tiny_predictor, strategy, max_partitions
    ):
        jobs = _specs(tiny_bundle, limit=6)
        config = PlannerConfig(
            partition_strategy=strategy, max_partitions=max_partitions
        )
        ref_fps, ref_lookups = _reference(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        rep_fps, rep_lookups = _replay(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        assert ref_fps == rep_fps
        assert ref_lookups == rep_lookups

    def test_randomized_adhoc_templates_identical(self, builder, tiny_predictor):
        """Parity across randomized shapes, not just recurring templates."""
        rng = np.random.default_rng(19)
        config = PlannerConfig(partition_jitter=0.35)
        reference = QueryPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), config
        )
        replay = SkeletonPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), config
        )
        for i in range(10):
            events = builder.filter(
                builder.scan("events_2024_01_01"),
                "value",
                float(rng.uniform(0.05, 0.9)),
                tag=f"sk:f{i}",
            )
            users = builder.filter(
                builder.scan("users_2024_01_01"),
                "country",
                float(rng.uniform(0.1, 0.9)),
                tag=f"sk:g{i}",
            )
            joined = builder.join(
                events, users,
                keys=("user_id", "user_id"),
                fanout=float(rng.uniform(0.05, 1.5)),
                tag=f"sk:j{i}",
            )
            agg = builder.aggregate(
                joined,
                keys=("country",),
                group_count=int(rng.integers(5, 5000)),
                tag=f"sk:a{i}",
            )
            logical = builder.output(agg, name=f"sk:o{i}")
            reference.jitter_salt = f"sk{i}"
            assert _fingerprint(reference.plan(logical)) == _fingerprint(
                replay.replan_job(f"sk-template{i}", 1, logical, f"sk{i}")
            )


class TestFleetReplanParity:
    def test_fleet_lockstep_matches_reference(self, tiny_bundle, tiny_predictor):
        """Multi-instance groups through the lockstep loop, bit for bit."""
        jobs = _specs(tiny_bundle, instances=3)
        config = PlannerConfig()
        ref_fps, ref_lookups = _reference(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        fleet_fps, fleet_lookups = _fleet(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        assert ref_fps == fleet_fps
        assert ref_lookups == fleet_lookups

    def test_fleet_with_partition_strategy_matches_reference(
        self, tiny_bundle, tiny_predictor
    ):
        jobs = _specs(tiny_bundle, limit=4, instances=2)
        config = PlannerConfig(
            partition_strategy=SamplingStrategy(scheme="geometric")
        )
        ref_fps, ref_lookups = _reference(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        fleet_fps, fleet_lookups = _fleet(
            jobs, CleoCostModel(tiny_predictor), config, tiny_predictor
        )
        assert ref_fps == fleet_fps
        assert ref_lookups == fleet_lookups

    def test_fleet_scalar_serving_matches_reference(
        self, tiny_bundle, tiny_predictor
    ):
        """batched=False degrades to per-job solo replay, still bit-exact."""
        jobs = _specs(tiny_bundle, limit=5, instances=2)
        config = PlannerConfig()
        ref_fps, _ = _reference(
            jobs, CleoCostModel(tiny_predictor, batched=False), config, tiny_predictor
        )
        fleet_fps, _ = _fleet(
            jobs, CleoCostModel(tiny_predictor, batched=False), config, tiny_predictor
        )
        assert ref_fps == fleet_fps

    def test_cache_enabled_service_plans_identical(
        self, tiny_bundle, tiny_predictor
    ):
        """A shared LRU service changes accounting, never plan choices."""
        from repro.serving.service import CleoService

        jobs = _specs(tiny_bundle, limit=6, instances=2)
        config = PlannerConfig()
        ref_fps, _ = _reference(
            jobs,
            CleoService(tiny_predictor).cost_model(),
            config,
            tiny_predictor,
        )
        fleet_fps, _ = _fleet(
            jobs,
            CleoService(tiny_predictor).cost_model(),
            config,
            tiny_predictor,
        )
        assert ref_fps == fleet_fps

    def test_sharded_cluster_client_plans_identical(
        self, tiny_bundle, tiny_predictor
    ):
        """The replay prices through the sharded tier unchanged."""
        from repro.serving.shard import ShardedCleoRouter

        jobs = _specs(tiny_bundle, limit=6, instances=2)
        config = PlannerConfig()

        def sharded_model():
            router = ShardedCleoRouter({"cluster1": tiny_predictor}, n_shards=3)
            return router.client("cluster1").cost_model()

        ref_fps, _ = _reference(jobs, sharded_model(), config, tiny_predictor)
        fleet_fps, _ = _fleet(jobs, sharded_model(), config, tiny_predictor)
        assert ref_fps == fleet_fps

    def test_empty_and_ordering(self, tiny_bundle, tiny_predictor):
        """No jobs -> no results; interleaved groups keep input order."""
        model = CleoCostModel(tiny_predictor)
        assert replan_jobs([], model) == []
        jobs = _specs(tiny_bundle, limit=3)
        interleaved = []
        for k in range(2):
            for template_id, day, logical, salt in jobs:
                interleaved.append((template_id, day, logical, f"{salt}/x{k}"))
        ref_fps, _ = _reference(
            interleaved, CleoCostModel(tiny_predictor), PlannerConfig(), tiny_predictor
        )
        fleet_fps, _ = _fleet(
            interleaved, CleoCostModel(tiny_predictor), PlannerConfig(), tiny_predictor
        )
        assert ref_fps == fleet_fps


class TestPlannerTelemetryAndGates:
    def test_stats_count_hits_builds_and_flushes(self, tiny_bundle, tiny_predictor):
        jobs = _specs(tiny_bundle, limit=4, instances=3)
        replanner = FleetReplanner(CleoCostModel(tiny_predictor))
        replanner.replan_jobs(
            [ReplanJob(salt, tid, day, logical) for tid, day, logical, salt in jobs]
        )
        groups = len({(tid, day) for tid, day, _logical, _salt in jobs})
        stats = replanner.stats()
        assert stats.jobs_replayed == len(jobs)
        assert stats.skeleton_builds == groups
        assert stats.skeleton_hits == len(jobs) - groups
        assert stats.skeletons_cached == groups
        assert stats.skeleton_evictions == 0
        assert stats.frontier_flushes > 0

    def test_skeleton_cache_clears_at_limit(self, builder, tiny_predictor):
        planner = SkeletonPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), PlannerConfig()
        )
        planner._SKELETON_CACHE_LIMIT = 3
        logical = builder.output(
            builder.filter(builder.scan("events_2024_01_01"), "value", 0.4, tag="cap:f"),
            name="cap:o",
        )
        for i in range(7):
            planner.replan_job(f"cap-template{i}", 1, logical, f"cap{i}")
        stats = planner.stats()
        assert stats.skeleton_builds == 7
        assert stats.skeleton_evictions > 0
        assert stats.skeletons_cached <= 3

    def test_memo_and_choices_reset_per_job(self, tiny_bundle, tiny_predictor):
        jobs = _specs(tiny_bundle, limit=2)
        planner = SkeletonPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), PlannerConfig()
        )
        sizes = []
        for template_id, day, logical, salt in jobs:
            planner.replan_job(template_id, day, logical, salt)
            sizes.append(len(planner._memo))
            assert planner._pending == []
        # Each job's memo is bounded by its own template's frame count.
        assert all(0 < size < 200 for size in sizes)

    def test_opaque_model_is_rejected(self):
        class OpaqueModel:
            def operator_cost(self, op, estimator, partition_override=None):
                return 1.0

        assert not supports_fast_path(
            OpaqueModel(), CardinalityEstimator(), PlannerConfig()
        )
        with pytest.raises(OptimizationError, match="supports_replay_costing"):
            SkeletonPlanner(OpaqueModel(), CardinalityEstimator(), PlannerConfig())

    def test_capability_flag_gates_fast_path(self, tiny_predictor):
        """supports_fast_path is a capability check, not a type check."""
        from repro.cost.default_model import DefaultCostModel
        from repro.cost.tuned_model import TunedCostModel

        config = PlannerConfig()
        estimator = CardinalityEstimator()

        class Retuned(DefaultCostModel):
            inflation = 9.0

        class OverriddenFormula(DefaultCostModel):
            def operator_cost(self, op, estimator, partition_override=None):
                return 2.0 * super().operator_cost(op, estimator, partition_override)

        assert supports_fast_path(DefaultCostModel(), estimator, config)
        assert supports_fast_path(Retuned(), estimator, config)
        assert supports_fast_path(TunedCostModel(), estimator, config)
        assert supports_fast_path(CleoCostModel(tiny_predictor), estimator, config)
        assert not supports_fast_path(OverriddenFormula(), estimator, config)
        # Strategies stay excluded from the workload-engine gate (replan_job
        # runs the partition pass itself; the engine does not).
        assert not supports_fast_path(
            DefaultCostModel(),
            estimator,
            PlannerConfig(partition_strategy=SamplingStrategy()),
        )
