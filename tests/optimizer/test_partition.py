"""Tests for partition exploration strategies and plan-level optimization."""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.cost.default_model import DefaultCostModel
from repro.optimizer.partition import (
    AnalyticalStrategy,
    DefaultHeuristicStrategy,
    ExhaustiveStrategy,
    ResourceContext,
    SamplingStrategy,
    default_partition_heuristic,
    expected_lookups,
    optimize_partitions,
)
from repro.core.learned_model import ResourceProfile
from repro.plan.physical import ExchangeMode, PhysOpType, validate_physical_plan
from repro.plan.stages import build_stage_graph


class TestHeuristic:
    def test_scales_with_volume(self, physical_join_plan, estimator):
        ops = sorted(physical_join_plan.walk(), key=lambda o: o.input_card)
        small = default_partition_heuristic(ops[0], estimator)
        large = default_partition_heuristic(ops[-1], estimator)
        assert small <= large

    def test_cap_respected(self, physical_join_plan, estimator):
        for op in physical_join_plan.walk():
            assert 1 <= default_partition_heuristic(op, estimator, cap=250) <= 250


class TestResourceContext:
    def test_aggregates_thetas(self):
        ctx = ResourceContext()
        ctx.attach(ResourceProfile(10.0, 1.0, 2.0))
        ctx.attach(ResourceProfile(90.0, 0.0, 1.0))
        assert ctx.theta_p == 100.0
        assert ctx.theta_c == 1.0
        assert ctx.stage_cost(10) == pytest.approx(100.0 / 10 + 10.0 + 3.0)

    def test_optimal_matches_sqrt_rule(self):
        ctx = ResourceContext()
        ctx.attach(ResourceProfile(400.0, 4.0, 0.0))
        assert ctx.optimal_partitions(3000) == 10


class TestSamplingStrategies:
    def test_geometric_candidates_shape(self):
        strategy = SamplingStrategy(scheme="geometric", skip_coefficient=1.0)
        candidates = strategy.candidates(1000)
        assert candidates[0] == 1
        assert all(b > a for a, b in zip(candidates, candidates[1:]))

    def test_uniform_candidates_bounded(self):
        strategy = SamplingStrategy(scheme="uniform", n_samples=10)
        candidates = strategy.candidates(500)
        assert min(candidates) >= 1 and max(candidates) <= 500

    def test_random_deterministic_by_seed(self):
        a = SamplingStrategy(scheme="random", n_samples=8, seed=3).candidates(100)
        b = SamplingStrategy(scheme="random", n_samples=8, seed=3).candidates(100)
        assert a == b

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            SamplingStrategy(scheme="fancy")


class TestOptimizePartitions:
    def test_gather_stages_stay_fixed(self, tiny_bundle, tiny_predictor, estimator):
        job = tiny_bundle.log.jobs[0]
        plan = tiny_bundle.runner.plans[job.job_id]
        cost_model = CleoCostModel(tiny_predictor)
        optimized = optimize_partitions(
            plan, cost_model, estimator, AnalyticalStrategy(), max_partitions=500
        )
        for op in optimized.walk():
            if op.op_type is PhysOpType.EXCHANGE and op.exchange_mode is ExchangeMode.GATHER:
                assert op.partition_count == 1

    def test_result_validates_and_keeps_structure(self, tiny_bundle, tiny_predictor, estimator):
        job = tiny_bundle.log.jobs[0]
        plan = tiny_bundle.runner.plans[job.job_id]
        cost_model = CleoCostModel(tiny_predictor)
        optimized = optimize_partitions(
            plan, cost_model, estimator, AnalyticalStrategy(), max_partitions=500
        )
        validate_physical_plan(optimized)
        assert [op.op_type for op in optimized.walk()] == [op.op_type for op in plan.walk()]

    def test_stage_counts_stay_consistent(self, tiny_bundle, tiny_predictor, estimator):
        job = tiny_bundle.log.jobs[1]
        plan = tiny_bundle.runner.plans[job.job_id]
        cost_model = CleoCostModel(tiny_predictor)
        optimized = optimize_partitions(
            plan, cost_model, estimator, SamplingStrategy(scheme="geometric"), max_partitions=500
        )
        graph = build_stage_graph(optimized)
        for stage in graph.stages:
            assert len({op.partition_count for op in stage.operators}) == 1

    def test_guard_blocks_predicted_regressions(self, tiny_bundle, tiny_predictor, estimator):
        """With the guard, predicted stage cost never increases."""
        job = tiny_bundle.log.jobs[2]
        plan = tiny_bundle.runner.plans[job.job_id]
        cost_model = CleoCostModel(tiny_predictor)
        optimized = optimize_partitions(
            plan, cost_model, estimator, AnalyticalStrategy(), max_partitions=500, guard=True
        )
        before = build_stage_graph(plan)
        after = build_stage_graph(optimized)
        for stage_before, stage_after in zip(before.stages, after.stages):
            cost_before = sum(
                cost_model.operator_cost(op, estimator) for op in stage_before.operators
            )
            cost_after = sum(
                cost_model.operator_cost(op, estimator) for op in stage_after.operators
            )
            assert cost_after <= cost_before * 1.001

    def test_analytical_requires_cleo(self, physical_simple_plan, estimator):
        with pytest.raises(TypeError):
            optimize_partitions(
                physical_simple_plan,
                DefaultCostModel(),
                estimator,
                AnalyticalStrategy(),
            )

    def test_heuristic_strategy_runs_with_default_model(
        self, physical_simple_plan, estimator
    ):
        optimized = optimize_partitions(
            physical_simple_plan,
            DefaultCostModel(),
            estimator,
            DefaultHeuristicStrategy(),
            max_partitions=400,
        )
        validate_physical_plan(optimized)

    def test_exhaustive_finds_no_worse_than_sampling(
        self, tiny_bundle, tiny_predictor, estimator
    ):
        job = tiny_bundle.log.jobs[3]
        plan = tiny_bundle.runner.plans[job.job_id]
        cost_model = CleoCostModel(tiny_predictor)
        graph = build_stage_graph(plan)
        stage = max(graph.stages, key=lambda s: len(s.operators))
        exhaustive = ExhaustiveStrategy().choose(stage.operators, cost_model, estimator, 64)
        sampled = SamplingStrategy(scheme="geometric", skip_coefficient=1.0).choose(
            stage.operators, cost_model, estimator, 64
        )
        from repro.optimizer.partition import _stage_cost_at

        assert _stage_cost_at(stage.operators, cost_model, estimator, exhaustive) <= (
            _stage_cost_at(stage.operators, cost_model, estimator, sampled) + 1e-9
        )


class TestExpectedLookups:
    def test_paper_figures(self):
        # Analytical: 5 lookups per operator -> 200 for 40 operators.
        assert expected_lookups(40, "analytical") == 200
        assert expected_lookups(1, "exhaustive", max_partitions=3000) == 15000

    def test_sampling_grows_with_skip(self):
        sparse = expected_lookups(10, "sampling-geometric", skip_coefficient=0.5)
        dense = expected_lookups(10, "sampling-geometric", skip_coefficient=5.0)
        assert dense > sparse

    def test_heuristic_is_free(self):
        assert expected_lookups(10, "heuristic") == 0

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            expected_lookups(1, "bogus")


class TestDagRebuild:
    """optimize_partitions on DAG-shaped caller input (shared subtrees)."""

    @staticmethod
    def _shared_plan(physical_simple_plan):
        """A hand-built DAG: one subtree consumed by two union inputs."""
        from repro.plan.physical import PhysicalOp
        from repro.plan.properties import Partitioning

        shared = physical_simple_plan.children[0]
        union = PhysicalOp(
            op_type=PhysOpType.UNION_ALL,
            children=(shared, shared),
            logical=None,
            partition_count=shared.partition_count,
            partitioning=Partitioning.random(),
        )
        return union

    def test_shared_subtree_keeps_shared_identity(
        self, physical_simple_plan, estimator
    ):
        from dataclasses import dataclass

        @dataclass
        class BumpStrategy:
            """Always picks a different count, forcing a real rebuild."""

            name: str = "bump"

            def choose(self, stage_ops, cost_model, estimator, max_partitions):
                return min(stage_ops[0].partition_count + 3, max_partitions)

        plan = self._shared_plan(physical_simple_plan)
        optimized = optimize_partitions(
            plan,
            DefaultCostModel(),
            estimator,
            BumpStrategy(),
            max_partitions=64,
            guard=False,
        )
        # Counts actually changed, so every node was rebuilt — and the
        # rebuilt shared subtree must stay ONE object, not a duplicate per
        # consumer (pre-fix, the un-memoized rebuild split it).
        assert optimized is not plan
        assert optimized.children[0] is optimized.children[1]

    def test_deep_sharing_stays_linear(self, physical_simple_plan, estimator):
        """2^40 paths if the walk is exponential; must finish instantly."""
        from repro.plan.physical import PhysicalOp
        from repro.plan.properties import Partitioning

        node = physical_simple_plan.children[0]
        for _ in range(40):
            node = PhysicalOp(
                op_type=PhysOpType.UNION_ALL,
                children=(node, node),
                logical=None,
                partition_count=node.partition_count,
                partitioning=Partitioning.random(),
            )
        optimized = optimize_partitions(
            node,
            DefaultCostModel(),
            estimator,
            DefaultHeuristicStrategy(),
            max_partitions=64,
        )
        # Sharing preserved at every level.
        probe = optimized
        for _ in range(40):
            assert probe.children[0] is probe.children[1]
            probe = probe.children[0]

    def test_stage_graph_counts_shared_ops_once(self, physical_simple_plan):
        plan = self._shared_plan(physical_simple_plan)
        graph = build_stage_graph(plan)
        for stage in graph.stages:
            ids = [id(op) for op in stage.operators]
            assert len(ids) == len(set(ids))
