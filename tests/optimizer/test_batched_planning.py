"""Batched learned-cost planning parity (optimizer.planner + partition).

The batched path must be *bitwise* identical to the scalar planner: same
plan shapes, same partition counts, same estimated costs, same candidate
counts, and the same per-prediction model-lookup accounting — batching may
only change how many vectorized model invocations happen, never what they
compute.  These tests pin that contract over the trained tiny bundle, over
randomized ad-hoc plans, and for every partition strategy family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.optimizer.partition import (
    AnalyticalStrategy,
    ExhaustiveStrategy,
    SamplingStrategy,
    _stage_cost_at,
)
from repro.optimizer.planner import (
    PlannerConfig,
    QueryPlanner,
    _DeferredCost,
    _resolve_cost,
)
from repro.plan.stages import build_stage_graph
from repro.workload.templates import instantiate


def _fingerprint(planned):
    return (
        tuple((op.op_type.value, op.partition_count) for op in planned.plan.walk()),
        planned.estimated_cost,
        planned.candidates_considered,
    )


def _test_jobs(bundle, limit=None):
    day = bundle.log.days[-1]
    catalog = bundle.generator.catalog_for_day(day)
    jobs = bundle.generator.jobs_for_day(day)
    if limit is not None:
        jobs = jobs[:limit]
    return [(job.job_id, instantiate(job, catalog)) for job in jobs]


def _plan_all(planner, jobs, predictor):
    fingerprints = []
    predictor.reset_lookup_count()
    for job_id, logical in jobs:
        planner.jitter_salt = job_id
        fingerprints.append(_fingerprint(planner.plan(logical)))
    return fingerprints, predictor.lookup_count


class TestFrontierPricingParity:
    def test_structural_plans_and_lookups_identical(self, tiny_bundle, tiny_predictor):
        jobs = _test_jobs(tiny_bundle)
        config = PlannerConfig()
        scalar = QueryPlanner(
            CleoCostModel(tiny_predictor, batched=False), CardinalityEstimator(), config
        )
        batched = QueryPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), config
        )
        scalar_fps, scalar_lookups = _plan_all(scalar, jobs, tiny_predictor)
        batched_fps, batched_lookups = _plan_all(batched, jobs, tiny_predictor)
        assert scalar_fps == batched_fps
        assert scalar_lookups == batched_lookups

    @pytest.mark.parametrize(
        "strategy,max_partitions",
        [
            (SamplingStrategy(scheme="geometric"), 3000),
            (SamplingStrategy(scheme="uniform", n_samples=8), 500),
            (ExhaustiveStrategy(), 24),
            (AnalyticalStrategy(), 3000),
        ],
        ids=["geometric", "uniform", "exhaustive", "analytical"],
    )
    def test_partition_strategies_identical(
        self, tiny_bundle, tiny_predictor, strategy, max_partitions
    ):
        jobs = _test_jobs(tiny_bundle, limit=8)
        config = PlannerConfig(
            partition_strategy=strategy, max_partitions=max_partitions
        )
        scalar = QueryPlanner(
            CleoCostModel(tiny_predictor, batched=False), CardinalityEstimator(), config
        )
        batched = QueryPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), config
        )
        scalar_fps, scalar_lookups = _plan_all(scalar, jobs, tiny_predictor)
        batched_fps, batched_lookups = _plan_all(batched, jobs, tiny_predictor)
        assert scalar_fps == batched_fps
        assert scalar_lookups == batched_lookups

    def test_randomized_adhoc_plans_identical(self, builder, tiny_predictor):
        """Parity across randomized plan shapes, not just recurring templates."""
        rng = np.random.default_rng(7)
        scalar = QueryPlanner(
            CleoCostModel(tiny_predictor, batched=False),
            CardinalityEstimator(),
            PlannerConfig(partition_jitter=0.35),
        )
        batched = QueryPlanner(
            CleoCostModel(tiny_predictor),
            CardinalityEstimator(),
            PlannerConfig(partition_jitter=0.35),
        )
        for i in range(12):
            events = builder.filter(
                builder.scan("events_2024_01_01"),
                "value",
                float(rng.uniform(0.05, 0.9)),
                tag=f"rt:f{i}",
            )
            users = builder.filter(
                builder.scan("users_2024_01_01"),
                "country",
                float(rng.uniform(0.1, 0.9)),
                tag=f"rt:g{i}",
            )
            joined = builder.join(
                events, users,
                keys=("user_id", "user_id"),
                fanout=float(rng.uniform(0.05, 1.5)),
                tag=f"rt:j{i}",
            )
            agg = builder.aggregate(
                joined,
                keys=("country",),
                group_count=int(rng.integers(5, 5000)),
                tag=f"rt:a{i}",
            )
            logical = builder.output(agg, name=f"rt:o{i}")
            scalar.jitter_salt = batched.jitter_salt = f"rt{i}"
            assert _fingerprint(scalar.plan(logical)) == _fingerprint(
                batched.plan(logical)
            )

    def test_cache_enabled_service_plans_identical(self, tiny_bundle, tiny_predictor):
        """service.cost_model() (LRU enabled, the whatif/allocation shape)."""
        from repro.serving.service import CleoService

        jobs = _test_jobs(tiny_bundle, limit=10)
        config = PlannerConfig(partition_strategy=SamplingStrategy())
        scalar_service = CleoService(tiny_predictor)
        batched_service = CleoService(tiny_predictor)
        scalar = QueryPlanner(
            CleoCostModel(tiny_predictor, service=scalar_service, batched=False),
            CardinalityEstimator(),
            config,
        )
        batched = QueryPlanner(
            batched_service.cost_model(), CardinalityEstimator(), config
        )
        scalar_fps, _ = _plan_all(scalar, jobs, tiny_predictor)
        batched_fps, _ = _plan_all(batched, jobs, tiny_predictor)
        assert scalar_fps == batched_fps
        # The batched planner really priced through batches, not one-by-one.
        stats = batched_service.stats()
        assert stats.batched_predictions > 0
        assert stats.scalar_predictions == 0

    def test_batched_flag_off_means_scalar_path(self, tiny_predictor):
        model = CleoCostModel(tiny_predictor, batched=False)
        assert not model.supports_batched_pricing
        assert CleoCostModel(tiny_predictor).supports_batched_pricing


class TestStageSweepPricing:
    def test_sweep_matches_scalar_stage_costs(self, tiny_bundle, tiny_predictor):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        estimator = CardinalityEstimator()
        model = CleoCostModel(tiny_predictor)
        graph = build_stage_graph(plan)
        partitions = [1, 2, 7, 33, 250]
        for stage in graph.stages:
            batched = model.price_stage_sweep(stage.operators, estimator, partitions)
            scalar = [
                _stage_cost_at(stage.operators, model, estimator, p)
                for p in partitions
            ]
            assert batched == scalar  # exact float equality, not approx

    def test_price_operators_matches_operator_cost(self, tiny_bundle, tiny_predictor):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        estimator = CardinalityEstimator()
        model = CleoCostModel(tiny_predictor)
        ops = list(plan.walk())
        tiny_predictor.reset_lookup_count()
        batched = model.price_operators(ops, estimator)
        batched_lookups = tiny_predictor.lookup_count
        tiny_predictor.reset_lookup_count()
        scalar = [model.operator_cost(op, estimator) for op in ops]
        assert tiny_predictor.lookup_count == batched_lookups
        assert list(batched) == scalar


class TestDeferredCostArithmetic:
    def test_replay_preserves_operand_order(self):
        priced = [0.1, 0.2, 0.7]
        leaf = lambda i: _DeferredCost(_DeferredCost.LEAF, i)  # noqa: E731
        # float + deferred, deferred + float, chains, and subtraction —
        # the shapes the planner's cost accumulation actually produces.
        assert _resolve_cost(0.5 + leaf(0), priced) == 0.5 + priced[0]
        assert _resolve_cost(leaf(1) + 0.5, priced) == priced[1] + 0.5
        chained = 0.25 + leaf(0) + leaf(1) + leaf(2)
        assert _resolve_cost(chained, priced) == ((0.25 + 0.1) + 0.2) + 0.7
        delta = 0.0 + (leaf(2) - leaf(0))
        assert _resolve_cost(delta, priced) == 0.0 + (0.7 - 0.1)
        assert _resolve_cost(1.25, priced) == 1.25

    def test_wide_frontier_resolves_without_recursion_error(
        self, builder, tiny_predictor
    ):
        """A very wide union builds a deferred expression thousands of
        nodes deep; resolution must be iterative (pre-fix: RecursionError
        on the default batched path for plans the scalar path handled)."""
        branches = [
            builder.filter(
                builder.scan("events_2024_01_01"), "value", 0.2, tag=f"wide:f{i}"
            )
            for i in range(1100)
        ]
        logical = builder.output(
            builder.aggregate(
                builder.union(*branches, tag="wide:u"),
                keys=("user_id",),
                group_count=100,
                tag="wide:a",
            ),
            name="wide:o",
        )
        scalar = QueryPlanner(
            CleoCostModel(tiny_predictor, batched=False),
            CardinalityEstimator(),
            PlannerConfig(),
        )
        batched = QueryPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), PlannerConfig()
        )
        assert _fingerprint(scalar.plan(logical)) == _fingerprint(
            batched.plan(logical)
        )

    def test_planner_leaves_no_pending_ops(self, tiny_bundle, tiny_predictor):
        """Every deferred operator is priced exactly once per plan."""
        jobs = _test_jobs(tiny_bundle, limit=3)
        planner = QueryPlanner(
            CleoCostModel(tiny_predictor), CardinalityEstimator(), PlannerConfig()
        )
        for job_id, logical in jobs:
            planner.jitter_salt = job_id
            planner.plan(logical)
            assert planner._pending_ops == []


class TestApplicationRouting:
    def test_whatif_and_allocation_plan_batched(self, tiny_bundle, tiny_predictor):
        """The application layers inherit batched pricing automatically."""
        from repro.applications.whatif import WhatIfAnalyzer
        from repro.serving.service import CleoService

        service = CleoService(tiny_predictor)
        analyzer = WhatIfAnalyzer(service)
        assert service.cost_model().supports_batched_pricing
        job = next(iter(tiny_bundle.test_log()))
        catalog = tiny_bundle.generator.catalog_for_day(job.day)
        spec = next(
            j
            for j in tiny_bundle.generator.jobs_for_day(job.day)
            if j.job_id == job.job_id
        )
        logical = instantiate(spec, catalog)
        before = service.stats().batched_predictions
        outcome = analyzer.evaluate(logical, lambda plan: plan, job_id=job.job_id)
        assert outcome.baseline.latency_seconds > 0
        assert service.stats().batched_predictions > before
        assert service.stats().scalar_predictions == 0
