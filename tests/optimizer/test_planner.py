"""Tests for the query planner: lowering, enforcement, alternatives."""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import plan_cost
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.plan.physical import ExchangeMode, PhysOpType, validate_physical_plan
from repro.plan.properties import PartitionScheme


def _plan_with(config: PlannerConfig, logical):
    planner = QueryPlanner(DefaultCostModel(), CardinalityEstimator(), config)
    return planner.plan(logical).plan


class TestLowering:
    def test_simple_plan_shape(self, physical_simple_plan):
        types = [op.op_type for op in physical_simple_plan.walk()]
        assert types.count(PhysOpType.EXTRACT) == 1
        assert PhysOpType.OUTPUT in types
        assert (
            PhysOpType.HASH_AGGREGATE in types or PhysOpType.STREAM_AGGREGATE in types
        )

    def test_plan_validates(self, physical_join_plan, physical_simple_plan):
        validate_physical_plan(physical_join_plan)
        validate_physical_plan(physical_simple_plan)

    def test_join_children_co_partitioned(self, physical_join_plan):
        joins = [
            op
            for op in physical_join_plan.walk()
            if op.op_type in (PhysOpType.HASH_JOIN, PhysOpType.MERGE_JOIN)
        ]
        assert joins
        for join in joins:
            left, right = join.children
            assert left.partition_count == right.partition_count
            assert left.partitioning.scheme is PartitionScheme.HASH
            assert right.partitioning.scheme is PartitionScheme.HASH

    def test_sort_requirement_enforced(self, physical_join_plan):
        """Merge joins and stream aggregates only consume sorted input."""
        for op in physical_join_plan.walk():
            if op.op_type is PhysOpType.MERGE_JOIN:
                for child in op.children:
                    assert child.sorting.is_sorted
            if op.op_type is PhysOpType.STREAM_AGGREGATE:
                assert op.children[0].sorting.is_sorted

    def test_topk_runs_on_singleton(self, builder, planner):
        logical = builder.output(
            builder.topk(builder.scan("events_2024_01_01"), keys=("value",), k=5),
            name="o",
        )
        plan = planner.plan(logical).plan
        topk = next(op for op in plan.walk() if op.op_type is PhysOpType.TOP_K)
        assert topk.partition_count == 1
        gathers = [
            op
            for op in plan.walk()
            if op.op_type is PhysOpType.EXCHANGE and op.exchange_mode is ExchangeMode.GATHER
        ]
        assert gathers

    def test_union_children_aligned(self, builder, planner):
        a = builder.scan("events_2024_01_01")
        b = builder.scan("users_2024_01_01")
        logical = builder.output(builder.union(a, b), name="o")
        plan = planner.plan(logical).plan
        union = next(op for op in plan.walk() if op.op_type is PhysOpType.UNION_ALL)
        counts = {child.partition_count for child in union.children}
        assert len(counts) == 1

    def test_estimated_cost_matches_plan_cost(self, planner, join_plan):
        planned = planner.plan(join_plan)
        recomputed = plan_cost(planner.cost_model, planned.plan, planner.estimator)
        assert planned.estimated_cost == pytest.approx(recomputed)

    def test_deterministic(self, join_plan, estimator):
        p1 = _plan_with(PlannerConfig(), join_plan)
        p2 = _plan_with(PlannerConfig(), join_plan)
        assert p1.describe() == p2.describe()


class TestAlternatives:
    def test_merge_join_can_be_disabled(self, join_plan):
        plan = _plan_with(PlannerConfig(enable_merge_join=False), join_plan)
        assert all(op.op_type is not PhysOpType.MERGE_JOIN for op in plan.walk())

    def test_local_aggregate_can_be_disabled(self, simple_plan):
        plan = _plan_with(PlannerConfig(enable_local_aggregate=False), simple_plan)
        assert all(op.op_type is not PhysOpType.LOCAL_AGGREGATE for op in plan.walk())

    def test_commute_changes_candidate_count(self, join_plan, estimator):
        with_commute = QueryPlanner(
            DefaultCostModel(), CardinalityEstimator(), PlannerConfig()
        )
        without = QueryPlanner(
            DefaultCostModel(),
            CardinalityEstimator(),
            PlannerConfig(enable_join_commute=False),
        )
        n_with = with_commute.plan(join_plan).candidates_considered
        n_without = without.plan(join_plan).candidates_considered
        assert n_with > n_without

    def test_stream_aggregate_appears_when_sort_cheap(self, builder):
        """A tiny input should sometimes pick stream aggregation; at minimum
        the alternative must be explored without breaking the plan."""
        logical = builder.output(
            builder.aggregate(
                builder.scan("users_2024_01_01"), keys=("user_id",), group_count=1000
            ),
            name="o",
        )
        plan = _plan_with(PlannerConfig(), logical)
        validate_physical_plan(plan)

    def test_process_breaks_property_passthrough(self, builder, planner):
        """Partitioning below a UDF cannot satisfy requirements above it."""
        processed = builder.process(builder.scan("events_2024_01_01"), "udf", tag="t:u")
        logical = builder.output(
            builder.aggregate(processed, keys=("user_id",), group_count=100), name="o"
        )
        plan = planner.plan(logical).plan
        process = next(op for op in plan.walk() if op.op_type is PhysOpType.PROCESS)
        assert process.partitioning.scheme is PartitionScheme.RANDOM


class TestJitter:
    def test_zero_jitter_is_heuristic(self, join_plan):
        a = _plan_with(PlannerConfig(partition_jitter=0.0), join_plan)
        b = _plan_with(PlannerConfig(partition_jitter=0.0), join_plan)
        assert [op.partition_count for op in a.walk()] == [
            op.partition_count for op in b.walk()
        ]

    def test_jitter_varies_by_salt(self, join_plan, estimator):
        planner = QueryPlanner(
            DefaultCostModel(),
            CardinalityEstimator(),
            PlannerConfig(partition_jitter=0.4),
        )
        planner.jitter_salt = "job-a"
        counts_a = [op.partition_count for op in planner.plan(join_plan).plan.walk()]
        planner.jitter_salt = "job-b"
        counts_b = [op.partition_count for op in planner.plan(join_plan).plan.walk()]
        assert counts_a != counts_b

    def test_jitter_deterministic_per_salt(self, join_plan):
        results = []
        for _ in range(2):
            planner = QueryPlanner(
                DefaultCostModel(),
                CardinalityEstimator(),
                PlannerConfig(partition_jitter=0.4),
            )
            planner.jitter_salt = "fixed"
            results.append([op.partition_count for op in planner.plan(join_plan).plan.walk()])
        assert results[0] == results[1]


class TestDagLogicalPlans:
    def test_shared_logical_subtree_yields_physical_tree(self, builder, planner):
        """TPC-H Q17 pattern: one logical branch consumed by two parents."""
        from repro.plan.stages import build_stage_graph

        shared = builder.filter(builder.scan("events_2024_01_01"), "v", 0.3, tag="t:sh")
        agg = builder.aggregate(shared, keys=("user_id",), group_count=1000, tag="t:a")
        joined = builder.join(shared, agg, keys=("user_id", "user_id"), fanout=0.2, tag="t:j")
        logical = builder.output(joined, name="o")
        plan = planner.plan(logical).plan
        # Every physical node must be unique (a tree, not a DAG).
        ids = [id(op) for op in plan.walk()]
        assert len(ids) == len(set(ids))
        build_stage_graph(plan)  # must not raise

    def test_dag_plan_survives_partition_optimization(self, builder, tiny_predictor):
        from repro.cardinality.estimator import CardinalityEstimator
        from repro.core.cost_model import CleoCostModel
        from repro.optimizer.partition import AnalyticalStrategy
        from repro.plan.physical import validate_physical_plan

        shared = builder.filter(builder.scan("events_2024_01_01"), "v", 0.3, tag="t:sh2")
        agg = builder.aggregate(shared, keys=("user_id",), group_count=1000, tag="t:a2")
        joined = builder.join(shared, agg, keys=("user_id", "user_id"), fanout=0.2, tag="t:j2")
        logical = builder.output(joined, name="o")
        planner = QueryPlanner(
            CleoCostModel(tiny_predictor),
            CardinalityEstimator(),
            PlannerConfig(partition_strategy=AnalyticalStrategy()),
        )
        plan = planner.plan(logical).plan
        validate_physical_plan(plan)
