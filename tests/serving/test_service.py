"""Tests for the serving façade (repro.serving).

The load-bearing guarantee: batched serving is *bitwise identical* to
one-at-a-time prediction while collapsing a workload's pricing into one
vectorized model call per covering (kind, signature) group.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SPECIFICITY_ORDER, ModelKind
from repro.core.model_store import ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.serving import CleoService, LRUCache, PredictionRequest
from repro.serving.service import as_cost_model


@pytest.fixture(scope="module")
def workload_records(tiny_bundle):
    """At least 1000 operator instances from the tiny cluster workload."""
    records = list(tiny_bundle.log.operator_records())
    assert len(records) >= 1000, "tiny workload should exceed 1k operators"
    return records


@pytest.fixture()
def service(tiny_predictor):
    return CleoService(tiny_predictor)


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_bounded_with_lru_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now the oldest
        cache.put("c", 3)
        assert len(cache) == 2
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestBatchedPrediction:
    def test_batch_bitwise_identical_to_sequential(self, service, workload_records):
        """Acceptance: 1k+ operators, batched == sequential, bit for bit."""
        requests = [PredictionRequest.for_record(r) for r in workload_records]
        batched = service.predict_batch(requests)
        sequential = np.array(
            [
                service.predictor.predict(r.features, r.signatures)
                for r in workload_records
            ]
        )
        assert np.array_equal(batched, sequential)

    def test_one_vectorized_call_per_model_group(self, service, workload_records):
        """Acceptance: at most one vectorized call per (kind, signature)
        group (plus one combined-model matrix call), via ``stats()``."""
        requests = [PredictionRequest.for_record(r) for r in workload_records]
        unique = {r.key for r in requests}
        expected_groups = len(
            {
                (kind, signature_for(kind, signatures))
                for _, signatures in unique
                for kind in ModelKind
                if service.store.lookup(kind, signatures) is not None
            }
        )
        service.reset_stats()
        service.predict_batch(requests)
        stats = service.stats()
        assert stats.individual_model_calls == expected_groups
        assert stats.combined_model_calls == 1
        assert stats.model_calls <= expected_groups + 1
        assert stats.batched_predictions == len(requests)

    def test_cache_hits_counted_and_models_not_recalled(self, service, workload_records):
        requests = [PredictionRequest.for_record(r) for r in workload_records[:200]]
        first = service.predict_batch(requests)
        calls_after_first = service.stats().model_calls
        second = service.predict_batch(requests)
        stats = service.stats()
        assert np.array_equal(first, second)
        assert stats.model_calls == calls_after_first  # no new model work
        assert stats.cache_hits >= len({r.key for r in requests})

    def test_scalar_predict_uses_cache(self, service, workload_records):
        record = workload_records[0]
        first = service.predict(record.features, record.signatures)
        lookups_after_first = service.predictor.lookup_count
        second = service.predict(record.features, record.signatures)
        assert first == second
        assert service.predictor.lookup_count == lookups_after_first
        assert service.stats().cache_hits >= 1

    def test_store_only_batch_matches_sequential(self, tiny_predictor, workload_records):
        """Without the combined model the grouped fallback chain batches too."""
        store_only = CleoPredictor(store=tiny_predictor.store)
        service = CleoService(store_only)
        requests = [PredictionRequest.for_record(r) for r in workload_records[:500]]
        batched = service.predict_batch(requests)
        sequential = np.array(
            [store_only.predict(r.features, r.signatures) for r in workload_records[:500]]
        )
        assert np.array_equal(batched, sequential)
        assert service.stats().combined_model_calls == 0

    def test_cache_disabled_recomputes(self, tiny_predictor, workload_records):
        service = CleoService(tiny_predictor, prediction_cache_size=0)
        requests = [PredictionRequest.for_record(r) for r in workload_records[:50]]
        service.predict_batch(requests)
        first_calls = service.stats().model_calls
        service.predict_batch(requests)
        assert service.stats().model_calls == 2 * first_calls
        assert service.stats().cache_hits == 0

    def test_cache_disabled_lookup_accounting_matches_scalar(
        self, tiny_predictor, workload_records
    ):
        """In-batch dedup must not undercount the 5-lookups-per-sample
        accounting when the cache is off (Section 6.5 parity)."""
        service = CleoService(tiny_predictor, prediction_cache_size=0)
        requests = [PredictionRequest.for_record(r) for r in workload_records]
        tiny_predictor.reset_lookup_count()
        service.predict_batch(requests)
        assert tiny_predictor.lookup_count == (
            len(requests) * CleoPredictor.LOOKUPS_PER_PREDICTION
        )

    def test_predictor_reassignment_drops_stale_cache(
        self, tiny_predictor, workload_records
    ):
        service = CleoService(tiny_predictor)
        record = workload_records[0]
        with_combined = service.predict(record.features, record.signatures)
        service.predictor = CleoPredictor(store=tiny_predictor.store)
        fresh = service.predict(record.features, record.signatures)
        assert fresh == tiny_predictor.store.most_specific(record.signatures)[
            1
        ].predict_one(record.features)
        assert fresh != with_combined  # not served from the stale entry


class TestExplain:
    def test_combined_tier(self, service, workload_records):
        record = workload_records[0]
        explanation = service.explain(record.features, record.signatures)
        assert explanation.source == "combined"
        assert explanation.cost == service.predict(record.features, record.signatures)

    def test_individual_tier_reports_most_specific_kind(
        self, tiny_predictor, workload_records
    ):
        store_only = CleoService(CleoPredictor(store=tiny_predictor.store))
        for record in workload_records[:100]:
            explanation = store_only.explain(record.features, record.signatures)
            best = tiny_predictor.store.most_specific(record.signatures)
            assert best is not None
            kind = best[0]
            assert explanation.source == kind.value
            assert explanation.model_kind == kind.value
            assert explanation.signature == signature_for(kind, record.signatures)
            if kind is SPECIFICITY_ORDER[0]:
                assert explanation.fallback_reason is None
            else:
                assert kind.value in explanation.fallback_reason

    def test_global_fallback_tier(self, workload_records):
        empty = CleoService(CleoPredictor(store=ModelStore(), fallback_cost=7.5))
        record = workload_records[0]
        explanation = empty.explain(record.features, record.signatures)
        assert explanation.source == "fallback"
        assert explanation.model_kind is None
        assert explanation.cost == 7.5
        assert "no trained model" in explanation.fallback_reason


class TestLifecycle:
    def test_save_load_round_trip(self, service, workload_records, tmp_path):
        path = tmp_path / "models.json"
        service.save(path)
        reloaded = CleoService.load(path)
        requests = [PredictionRequest.for_record(r) for r in workload_records[:200]]
        assert np.array_equal(
            service.predict_batch(requests), reloaded.predict_batch(requests)
        )
        assert reloaded.model_count == service.model_count

    def test_train_constructor(self, tiny_bundle):
        trained = CleoService.train(
            tiny_bundle.log, individual_days=[1, 2], combined_days=[2]
        )
        assert trained.model_count > 0
        record = next(tiny_bundle.log.operator_records())
        assert trained.predict(record.features, record.signatures) >= 0.0

    def test_deploy_and_rollback(self, tiny_predictor, tiny_bundle):
        service = CleoService(tiny_predictor)
        first = service.deploy(day=2, window=(1, 2))
        assert first.version == 1
        other = CleoPredictor(store=tiny_predictor.store)
        service.predictor = other
        second = service.deploy(day=3, window=(2, 3))
        assert second.version == 2
        rolled = service.rollback()
        assert rolled.version == 1
        assert service.predictor is tiny_predictor

    def test_ensure_idempotent(self, service, tiny_predictor):
        assert CleoService.ensure(service) is service
        wrapped = CleoService.ensure(tiny_predictor)
        assert isinstance(wrapped, CleoService)
        assert wrapped.predictor is tiny_predictor


class TestCostModelFacade:
    def test_cost_model_prices_like_predictor(self, service, tiny_bundle):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        estimator = tiny_bundle.fresh_estimator()
        model = service.cost_model()
        estimator.reset()
        sequential = [model.operator_cost(op, estimator) for op in plan.walk()]
        total = model.plan_cost(plan, estimator)
        assert total == pytest.approx(sum(sequential))
        explanation = model.explain(next(plan.walk()), estimator)
        assert explanation.source == "combined"

    def test_as_cost_model(self, service):
        model = as_cost_model(service)
        assert model.service is service
        assert as_cost_model(model) is model

    def test_bundle_cache_is_bounded(self, tiny_predictor, tiny_bundle):
        service = CleoService(tiny_predictor, bundle_cache_size=8)
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        for op in plan.walk():
            service.bundle_for(op)
        assert service.stats().bundle_cache.size <= 8
