"""Packed inference runtime tests (repro.core.packed + serving fast path).

The load-bearing guarantee: pricing through the compiled
``PackedModelBank`` / flat tree ensemble is *bitwise identical* to the
object-graph reference path and to one-at-a-time prediction, across
randomized stores and tables (including rows no model covers and kinds the
bank cannot pack), with the serving layer's model-call / fallback / lookup
accounting preserved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined import (
    CombinedModel,
    build_meta_matrix,
    build_meta_matrix_reference,
    predict_covered,
    predict_covered_reference,
)
from repro.core.config import CleoConfig, ModelKind
from repro.core.learned_model import LearnedCostModel
from repro.core.model_store import ModelStore
from repro.core.packed import predict_most_specific
from repro.core.predictor import CleoPredictor
from repro.features.featurizer import FeatureInput
from repro.features.table import FeatureTable
from repro.ml.gbm import FastTreeRegressor
from repro.plan.signatures import SignatureBundle
from repro.serving import CleoService, PredictionRequest

#: Signature alphabet sizes per kind column (small so groups repeat).
_SIG_CARDINALITY = {"strict": 12, "approx": 8, "input": 6, "operator": 4}


def _random_input(rng: np.random.Generator) -> FeatureInput:
    return FeatureInput(
        input_card=float(rng.uniform(1, 1e6)),
        base_card=float(rng.uniform(1, 1e6)),
        output_card=float(rng.uniform(0, 1e5)),
        avg_row_bytes=float(rng.uniform(8, 256)),
        partition_count=float(rng.integers(1, 64)),
        input_enc=float(rng.uniform(0, 1)),
        params_enc=float(rng.uniform(0, 1)),
        logical_count=float(rng.integers(1, 20)),
        depth=float(rng.integers(1, 10)),
    )


def _random_workload(rng: np.random.Generator, n: int):
    inputs = [_random_input(rng) for _ in range(n)]
    bundles = [
        SignatureBundle(
            strict=int(rng.integers(0, _SIG_CARDINALITY["strict"])),
            approx=int(rng.integers(0, _SIG_CARDINALITY["approx"])),
            input=int(rng.integers(0, _SIG_CARDINALITY["input"])),
            operator=int(rng.integers(0, _SIG_CARDINALITY["operator"])),
        )
        for _ in range(n)
    ]
    return inputs, bundles, FeatureTable.from_inputs(inputs, bundles)


def _fitted_model(rng: np.random.Generator, kind: ModelKind) -> LearnedCostModel:
    config = CleoConfig(elastic_max_iter=25)
    model = LearnedCostModel(include_context=kind.uses_context_features, config=config)
    train = [_random_input(rng) for _ in range(10)]
    latencies = rng.uniform(0.01, 30.0, size=10)
    return model.fit(train, latencies)


def _random_store(
    rng: np.random.Generator, coverage: float = 0.6
) -> ModelStore:
    """Cover a random subset of each kind's signature alphabet."""
    store = ModelStore()
    for kind, field in (
        (ModelKind.OP_SUBGRAPH, "strict"),
        (ModelKind.OP_SUBGRAPH_APPROX, "approx"),
        (ModelKind.OP_INPUT, "input"),
        (ModelKind.OPERATOR, "operator"),
    ):
        for signature in range(_SIG_CARDINALITY[field]):
            if rng.uniform() < coverage:
                store.add(kind, signature, _fitted_model(rng, kind))
    return store


class TestRandomizedParity:
    """Property-style: packed == object graph == scalar, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_store_only_fallback_chain(self, seed):
        rng = np.random.default_rng(seed)
        inputs, bundles, table = _random_workload(rng, 90)
        store = _random_store(rng, coverage=0.25)
        predictor = CleoPredictor(store=store, fallback_cost=2.75)

        scalar = np.array(
            [predictor.predict(f, b) for f, b in zip(inputs, bundles)]
        )
        packed, _, n_fallbacks = predict_most_specific(store, table, 2.75)
        assert np.array_equal(scalar, packed)
        uncovered = sum(1 for b in bundles if store.most_specific(b) is None)
        assert n_fallbacks == uncovered
        assert uncovered > 0, "property test should exercise fallback rows"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_predict_covered_matches_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        _, _, table = _random_workload(rng, 70)
        store = _random_store(rng, coverage=0.5)
        for kind in ModelKind:
            ref_mask, ref_values = predict_covered_reference(store, table, kind)
            mask, values = predict_covered(store, table, kind)
            assert np.array_equal(ref_mask, mask)
            assert np.array_equal(ref_values[ref_mask], values[mask])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_combined_serving_matches_reference_and_scalar(self, seed):
        rng = np.random.default_rng(200 + seed)
        inputs, bundles, table = _random_workload(rng, 80)
        store = _random_store(rng, coverage=0.6)
        combined = CombinedModel(
            store, config=CleoConfig(meta_trees=6, meta_depth=3)
        )
        combined.fit_rows(
            build_meta_matrix_reference(store, table),
            rng.uniform(0.01, 40.0, size=len(table)),
        )
        predictor = CleoPredictor(store=store, combined=combined)
        service = CleoService(predictor, prediction_cache_size=0)

        packed = service.predict_table(table)
        reference = combined.predict_rows_reference(
            build_meta_matrix_reference(store, table)
        )
        scalar = np.array(
            [predictor.predict(f, b) for f, b in zip(inputs, bundles)]
        )
        assert np.array_equal(packed, reference)
        assert np.array_equal(packed, scalar)

    def test_unpackable_kind_falls_back_to_reference(self):
        """An unfitted model leaves its kind unpacked but served correctly."""
        rng = np.random.default_rng(7)
        inputs, bundles, table = _random_workload(rng, 60)
        store = _random_store(rng, coverage=0.5)
        # An unfitted model under a signature outside the table's alphabet:
        # the kind cannot pack, the reference loop serves it.
        store.add(
            ModelKind.OPERATOR,
            10_000,
            LearnedCostModel(include_context=True),
        )
        assert store.packed_bank().kinds[ModelKind.OPERATOR] is None
        predictor = CleoPredictor(store=store, fallback_cost=1.5)
        scalar = np.array(
            [predictor.predict(f, b) for f, b in zip(inputs, bundles)]
        )
        packed, _, _ = predict_most_specific(store, table, 1.5)
        assert np.array_equal(scalar, packed)

    def test_batch_and_table_paths_agree_cache_disabled(self):
        rng = np.random.default_rng(11)
        inputs, bundles, table = _random_workload(rng, 60)
        store = _random_store(rng, coverage=0.55)
        predictor = CleoPredictor(store=store, fallback_cost=4.0)
        service = CleoService(predictor, prediction_cache_size=0)
        requests = [
            PredictionRequest(features=f, signatures=b)
            for f, b in zip(inputs, bundles)
        ]
        batched = service.predict_batch(requests)
        table_native = service.predict_table(table)
        assert np.array_equal(batched, table_native)


class TestStatsAccounting:
    """predict_table preserves the cache-disabled batch path's accounting."""

    def _accounting(self, service, run):
        service.reset_stats()
        before = service.predictor.lookup_count
        run()
        stats = service.stats()
        return {
            "individual": stats.individual_model_calls,
            "combined": stats.combined_model_calls,
            "fallbacks": stats.fallback_predictions,
            "lookups": service.predictor.lookup_count - before,
            "predictions": stats.batched_predictions,
        }

    def test_store_only_accounting_matches_batch_path(self):
        rng = np.random.default_rng(21)
        inputs, bundles, table = _random_workload(rng, 70)
        # Duplicate a row: per-request fallback charging must still agree.
        inputs.append(inputs[0])
        bundles.append(bundles[0])
        table = FeatureTable.from_inputs(inputs, bundles)
        store = _random_store(rng, coverage=0.4)
        predictor = CleoPredictor(store=store, fallback_cost=1.0)
        requests = [
            PredictionRequest(features=f, signatures=b)
            for f, b in zip(inputs, bundles)
        ]

        batch_service = CleoService(predictor, prediction_cache_size=0)
        via_batch = self._accounting(
            batch_service, lambda: batch_service.predict_batch(requests)
        )
        table_service = CleoService(predictor, prediction_cache_size=0)
        via_table = self._accounting(
            table_service, lambda: table_service.predict_table(table)
        )
        assert via_table == via_batch
        assert via_table["fallbacks"] > 0

    def test_combined_accounting_matches_batch_path(self, tiny_predictor, tiny_bundle):
        table = tiny_bundle.test_table()
        records = list(tiny_bundle.test_log().operator_records())
        requests = [PredictionRequest.for_record(r) for r in records]

        batch_service = CleoService(tiny_predictor, prediction_cache_size=0)
        via_batch = self._accounting(
            batch_service, lambda: batch_service.predict_batch(requests)
        )
        table_service = CleoService(tiny_predictor, prediction_cache_size=0)
        via_table = self._accounting(
            table_service, lambda: table_service.predict_table(table)
        )
        # The batch path dedups identical requests before grouping; the
        # covering-group set (and so the call counters) is unchanged, and
        # lookups charge per request either way (Section 6.5 accounting).
        assert via_table == via_batch
        assert via_table["combined"] == 1
        assert via_table["individual"] > 0


class TestInvalidation:
    def test_store_add_recompiles_bank_and_serves_new_model(self):
        rng = np.random.default_rng(31)
        inputs, bundles, table = _random_workload(rng, 50)
        store = ModelStore()
        predictor = CleoPredictor(store=store, fallback_cost=9.0)
        service = CleoService(predictor, prediction_cache_size=0)
        first = service.predict_table(table)
        assert np.all(first == 9.0)  # empty store: all fallbacks

        model = _fitted_model(rng, ModelKind.OPERATOR)
        store.add(ModelKind.OPERATOR, bundles[0].operator, model)
        second = service.predict_table(table)
        assert second[0] == model.predict_one(inputs[0])

    def test_memory_bytes_cached_and_invalidated(self):
        rng = np.random.default_rng(41)
        store = _random_store(rng, coverage=0.5)
        first = store.memory_bytes
        assert store.memory_bytes == first  # cached path
        model = _fitted_model(rng, ModelKind.OPERATOR)
        store.add(ModelKind.OPERATOR, 999, model)
        assert store.memory_bytes == first + model.memory_bytes
        store.remove(ModelKind.OPERATOR, 999)
        assert store.memory_bytes == first

    def test_predictor_swap_serves_new_models(self, tiny_predictor, tiny_bundle):
        table = tiny_bundle.test_table()
        service = CleoService(tiny_predictor, prediction_cache_size=0)
        with_combined = service.predict_table(table)
        service.predictor = CleoPredictor(store=tiny_predictor.store)
        store_only = service.predict_table(table)
        assert not np.array_equal(with_combined, store_only)


class TestRoundTrip:
    def test_save_load_predict_rebuilds_bank(self, tiny_predictor, tiny_bundle, tmp_path):
        table = tiny_bundle.test_table()
        service = CleoService(tiny_predictor, prediction_cache_size=0)
        original = service.predict_table(table)

        path = tmp_path / "models.json"
        service.save(path)
        reloaded = CleoService.load(path, prediction_cache_size=0)
        # Fresh store, fresh (lazily compiled) bank.
        assert reloaded.store is not service.store
        restored = reloaded.predict_table(table)
        assert np.array_equal(original, restored)

    def test_predict_records_roundtrip_matches_reference(
        self, tiny_predictor, tiny_bundle
    ):
        records = list(tiny_bundle.test_log().operator_records())
        service = CleoService(tiny_predictor, prediction_cache_size=0)
        packed = service.predict_records(records)
        reference = service.predict_records_reference(records)
        assert np.array_equal(packed, reference)


class TestPredictorRecordsStoreOnly:
    """Satellite: the store-only predict_records loop is packed now."""

    def test_bitwise_parity_with_scalar_loop(self, tiny_predictor, tiny_bundle):
        records = list(tiny_bundle.test_log().operator_records())
        store_only = CleoPredictor(store=tiny_predictor.store, fallback_cost=1.0)
        grouped = store_only.predict_records(records)
        scalar = np.array([store_only.predict_record(r) for r in records])
        assert np.array_equal(grouped, scalar)

    def test_lookup_accounting_matches_scalar_loop(self, tiny_predictor, tiny_bundle):
        records = list(tiny_bundle.test_log().operator_records())
        store_only = CleoPredictor(store=tiny_predictor.store)
        store_only.reset_lookup_count()
        store_only.predict_records(records)
        assert store_only.lookup_count == (
            len(records) * CleoPredictor.LOOKUPS_PER_PREDICTION
        )


class TestFlatForestParity:
    def test_predict_matches_reference(self):
        rng = np.random.default_rng(51)
        x = rng.uniform(0, 100, size=(300, 7))
        y = rng.uniform(0, 50, size=300)
        model = FastTreeRegressor(n_estimators=12, max_depth=4, seed=3)
        model.fit(x, y)
        fresh = rng.uniform(0, 120, size=(500, 7))
        assert np.array_equal(model.predict(fresh), model.predict_reference(fresh))

    def test_refit_invalidates_flat_layout(self):
        rng = np.random.default_rng(61)
        x = rng.uniform(0, 10, size=(120, 4))
        y = rng.uniform(0, 5, size=120)
        model = FastTreeRegressor(n_estimators=5, max_depth=3, seed=1)
        model.fit(x, y)
        first = model.predict(x)
        model.fit(x, y * 3.0)  # refit: flat layout must recompile
        second = model.predict(x)
        assert not np.array_equal(first, second)
        assert np.array_equal(second, model.predict_reference(x))

    def test_packed_meta_builder_matches_reference(self, tiny_predictor, tiny_bundle):
        table = tiny_bundle.test_table()
        store = tiny_predictor.store
        assert np.array_equal(
            build_meta_matrix(store, table),
            build_meta_matrix_reference(store, table),
        )
