"""Tests for the serving reliability layer (faults, breakers, the ladder).

Three contracts:

* **Determinism** — fault decisions are pure functions of ``(seed, shard,
  cluster, token, attempt)``; the same chaos run replays bitwise.
* **Zero-fault parity** — with no injector, the hardened router's outputs
  and ``ServiceStats`` are bitwise/counter-identical to the pre-ladder
  fail-fast router (``resilience=None``) and the single-process service.
* **Availability** — with faults injected, every request is answered with
  finite, non-negative values: learned retries first, then the heuristic
  floor; poisoned models never leak NaN/inf/negative costs.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError, replace

import numpy as np
import pytest

from repro.common.errors import ShardError, ValidationError
from repro.serving import CleoService, PredictionRequest
from repro.serving.faults import (
    SCENARIOS,
    FaultInjector,
    FaultKind,
    FaultPolicy,
    InjectedFaultError,
    InjectedTimeoutError,
)
from repro.serving.shard import ShardedCleoRouter
from repro.serving.shard.health import (
    BreakerState,
    ResilienceConfig,
    ShardHealth,
)

# ------------------------------------------------------------------ #
# Fixtures
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def records(tiny_bundle):
    records = list(tiny_bundle.log.operator_records())[:400]
    assert len(records) == 400
    return records


@pytest.fixture(scope="module")
def requests(records):
    return [PredictionRequest.for_record(r) for r in records]


@pytest.fixture()
def baseline(tiny_predictor):
    return CleoService(tiny_predictor)


def make_router(tiny_predictor, **kwargs) -> ShardedCleoRouter:
    return ShardedCleoRouter({"cluster1": tiny_predictor}, **kwargs)


# ------------------------------------------------------------------ #
# FaultPolicy
# ------------------------------------------------------------------ #


class TestFaultPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"error_rate": -0.1},
            {"timeout_rate": 1.5},
            {"error_rate": 0.6, "corrupt_rate": 0.6},  # sum > 1
            {"latency_spike_s": -1.0},
            {"corrupt_mode": "zero"},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultPolicy(**kwargs)

    def test_noop_detection(self):
        assert FaultPolicy().is_noop
        assert not FaultPolicy(error_rate=0.01).is_noop

    def test_policy_is_frozen(self):
        with pytest.raises(FrozenInstanceError):
            FaultPolicy().error_rate = 0.5

    def test_scenarios_are_named_consistently(self):
        for name, policy in SCENARIOS.items():
            assert policy.name == name
        assert SCENARIOS["baseline"].is_noop
        assert not SCENARIOS["mixed_chaos"].is_noop

    def test_describe(self):
        text = FaultPolicy(name="x", error_rate=0.1, shards=(0, 2)).describe()
        assert "error=10%" in text and "shards [0, 2]" in text


# ------------------------------------------------------------------ #
# FaultInjector decisions
# ------------------------------------------------------------------ #


class TestInjectorDecisions:
    def test_decide_is_pure(self):
        policy = FaultPolicy(name="t", error_rate=0.2, corrupt_rate=0.2)
        a = FaultInjector(policy)
        b = FaultInjector(policy)
        for token in [(5, 123), (8, 999), (1, 0)]:
            for attempt in range(3):
                assert a.decide(1, "c", token, attempt) == b.decide(
                    1, "c", token, attempt
                )

    def test_seed_rekeys_every_draw(self):
        base = FaultPolicy(name="t", error_rate=0.5)
        a = FaultInjector(base)
        b = FaultInjector(replace(base, seed=99))
        decisions_a = [a.decide(0, "c", (1, t), 0) for t in range(200)]
        decisions_b = [b.decide(0, "c", (1, t), 0) for t in range(200)]
        assert decisions_a != decisions_b

    def test_retry_is_a_fresh_draw(self):
        injector = FaultInjector(FaultPolicy(name="t", error_rate=0.5))
        decisions = {
            injector.decide(0, "c", (4, 77), attempt) for attempt in range(8)
        }
        assert len(decisions) > 1  # not stuck repeating attempt 0's fate

    def test_shard_targeting(self):
        injector = FaultInjector(
            FaultPolicy(name="t", error_rate=1.0, shards=(1,))
        )
        assert injector.decide(0, "c", (1, 1), 0) is None
        assert injector.decide(1, "c", (1, 1), 0) is FaultKind.ERROR

    def test_rates_are_approximately_honored(self):
        injector = FaultInjector(
            FaultPolicy(name="t", error_rate=0.1, latency_rate=0.1)
        )
        kinds = [injector.decide(0, "c", (1, t), 0) for t in range(2000)]
        error_frac = sum(k is FaultKind.ERROR for k in kinds) / len(kinds)
        latency_frac = sum(k is FaultKind.LATENCY for k in kinds) / len(kinds)
        assert 0.05 < error_frac < 0.2
        assert 0.05 < latency_frac < 0.2

    def test_invoke_raises_and_counts(self):
        injector = FaultInjector(FaultPolicy(name="t", error_rate=1.0))
        with pytest.raises(InjectedFaultError) as err:
            injector.invoke(3, "c", (1, 1), 0, lambda: np.ones(1))
        assert err.value.shard == 3
        assert isinstance(err.value, ShardError)
        assert injector.stats()["error"] == 1
        assert injector.stats()["total"] == 1
        injector.reset_stats()
        assert injector.stats()["total"] == 0

    def test_injected_timeout_is_a_timeout(self):
        injector = FaultInjector(FaultPolicy(name="t", timeout_rate=1.0))
        with pytest.raises(InjectedTimeoutError):
            injector.invoke(0, "c", (1, 1), 0, lambda: np.ones(1))

    def test_corrupt_poisons_one_row_of_a_copy(self):
        injector = FaultInjector(
            FaultPolicy(name="t", corrupt_rate=1.0, corrupt_mode="nan")
        )
        values = np.ones(16)
        out = injector.corrupt(values, 0, "c", (16, 5))
        assert np.all(values == 1.0)  # original untouched
        assert np.isnan(out).sum() == 1
        again = injector.corrupt(values, 0, "c", (16, 5))
        assert np.array_equal(
            np.isnan(out), np.isnan(again)
        )  # same deterministic row

    @pytest.mark.parametrize(
        "mode,check",
        [
            ("nan", lambda v: np.isnan(v)),
            ("inf", lambda v: np.isposinf(v)),
            ("negative", lambda v: v < 0),
        ],
    )
    def test_corrupt_modes(self, mode, check):
        injector = FaultInjector(
            FaultPolicy(name="t", corrupt_rate=1.0, corrupt_mode=mode)
        )
        out = injector.corrupt(np.ones(8), 0, "c", (8, 1))
        assert sum(check(v) for v in out) == 1


# ------------------------------------------------------------------ #
# ShardHealth / circuit breaker state machine
# ------------------------------------------------------------------ #


class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"failure_threshold": 0},
            {"window": 0},
            {"cooldown_calls": 0},
            {"deadline_s": 0.0},
            {"hedge_threshold_s": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ResilienceConfig(**kwargs)


class TestCircuitBreaker:
    def make(self, **kwargs) -> ShardHealth:
        config = ResilienceConfig(
            failure_threshold=2, cooldown_calls=3, window=8, **kwargs
        )
        return ShardHealth(0, config)

    def test_opens_after_consecutive_failures(self):
        health = self.make()
        assert health.allow() and health.state is BreakerState.CLOSED
        health.record_failure()
        assert health.state is BreakerState.CLOSED
        health.record_failure()
        assert health.state is BreakerState.OPEN
        assert health.breaker_opens == 1

    def test_success_resets_the_consecutive_count(self):
        health = self.make()
        health.record_failure()
        health.record_success()
        health.record_failure()
        assert health.state is BreakerState.CLOSED

    def test_cooldown_counts_calls_then_probes(self):
        health = self.make()
        health.record_failure()
        health.record_failure()
        # OPEN: exactly cooldown_calls rejections before the probe.
        assert [health.allow() for _ in range(3)] == [False, False, False]
        assert health.allow()  # the half-open probe
        assert health.state is BreakerState.HALF_OPEN
        assert not health.allow()  # one probe at a time
        health.record_success()
        assert health.state is BreakerState.CLOSED
        assert health.stats().breaker_closes == 1

    def test_failed_probe_reopens(self):
        health = self.make()
        health.record_failure()
        health.record_failure()
        for _ in range(3):
            health.allow()
        assert health.allow()
        health.record_failure()
        assert health.state is BreakerState.OPEN
        assert health.breaker_opens == 2

    def test_stats_snapshot(self):
        health = self.make()
        health.record_success()
        health.record_failure(timeout=True)
        stats = health.stats()
        assert stats.calls == 2
        assert stats.failures == 1
        assert stats.timeouts == 1
        assert stats.window_failure_rate == 0.5
        assert "shard 0" in stats.describe()

    def test_reset_preserves_breaker_state(self):
        health = self.make()
        health.record_failure()
        health.record_failure()
        health.reset_stats()
        assert health.state is BreakerState.OPEN
        assert health.stats().failures == 0


# ------------------------------------------------------------------ #
# Zero-fault parity: the reliability layer must cost nothing when idle
# ------------------------------------------------------------------ #

CONFIGS = [(1, 1), (2, 1), (3, 2), (4, 4)]


class TestZeroFaultParity:
    @pytest.mark.parametrize("shards,workers", CONFIGS)
    def test_bitwise_and_counter_identical(
        self, tiny_predictor, requests, baseline, shards, workers
    ):
        expected = baseline.predict_batch(requests)
        with make_router(
            tiny_predictor, n_shards=shards, n_workers=workers
        ) as hardened:
            hardened_values = hardened.predict_batch("cluster1", requests)
            hardened_stats = hardened.stats()
        with make_router(
            tiny_predictor, n_shards=shards, n_workers=workers, resilience=None
        ) as legacy:
            legacy_values = legacy.predict_batch("cluster1", requests)
            legacy_stats = legacy.stats()
        assert np.array_equal(hardened_values, expected)
        assert np.array_equal(legacy_values, expected)
        assert hardened_stats == legacy_stats
        assert hardened_stats.retries == 0
        assert hardened_stats.breaker_opens == 0
        assert hardened_stats.degraded_predictions == 0

    def test_scalar_parity(self, tiny_predictor, requests, baseline):
        with make_router(tiny_predictor, n_shards=3) as router:
            for request in requests[:40]:
                assert router.predict(
                    "cluster1", request.features, request.signatures
                ) == baseline.predict(request.features, request.signatures)

    def test_noop_injector_is_still_bitwise(
        self, tiny_predictor, requests, baseline
    ):
        """A wired-up injector whose policy is all-zeros changes nothing."""
        expected = baseline.predict_batch(requests)
        injector = FaultInjector(SCENARIOS["baseline"])
        with make_router(
            tiny_predictor, n_shards=3, fault_injector=injector
        ) as router:
            assert np.array_equal(
                router.predict_batch("cluster1", requests), expected
            )
            assert router.fault_stats()["total"] == 0

    def test_describe_flags_the_reliability_layer(self, tiny_predictor):
        with make_router(tiny_predictor, n_shards=2) as router:
            assert "resilient" in router.describe()
        with make_router(tiny_predictor, n_shards=2, resilience=None) as router:
            assert "resilient" not in router.describe()


# ------------------------------------------------------------------ #
# The degradation ladder under injected faults
# ------------------------------------------------------------------ #


def _shard_spread(router, requests):
    owners = [
        router.shard_for("cluster1", r.signatures.approx) for r in requests
    ]
    return set(owners)


class TestDegradationLadder:
    def test_successor_serves_the_failed_shards_rows_bitwise(
        self, tiny_predictor, requests, baseline
    ):
        """Shard 0 always fails -> ring successors answer from the shared
        model bank, so values still match the single-process service."""
        expected = baseline.predict_batch(requests)
        injector = FaultInjector(
            FaultPolicy(name="kill0", error_rate=1.0, shards=(0,))
        )
        with make_router(
            tiny_predictor, n_shards=3, fault_injector=injector
        ) as router:
            assert 0 in _shard_spread(router, requests)
            values = router.predict_batch("cluster1", requests)
            stats = router.stats()
        assert np.array_equal(values, expected)
        assert stats.retries > 0
        assert stats.degraded_predictions == 0

    def test_corrupt_outputs_are_caught_and_retried(
        self, tiny_predictor, requests, baseline
    ):
        """Router-boundary output validation treats a poisoned answer as a
        shard failure; the clean successor's values win."""
        expected = baseline.predict_batch(requests)
        injector = FaultInjector(
            FaultPolicy(name="poison0", corrupt_rate=1.0, shards=(0,))
        )
        with make_router(
            tiny_predictor, n_shards=3, fault_injector=injector
        ) as router:
            values = router.predict_batch("cluster1", requests)
            health = router.resilience_stats()
        assert np.array_equal(values, expected)
        assert health[0].failures > 0

    def test_total_failure_degrades_to_the_heuristic_floor(
        self, tiny_predictor, requests
    ):
        injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
        with make_router(
            tiny_predictor, n_shards=2, fault_injector=injector
        ) as router:
            values = router.predict_batch("cluster1", requests)
            stats = router.stats()
            floor = router._bounded(
                router._heuristic_inputs([r.features for r in requests])
            )
        assert np.isfinite(values).all() and (values >= 0.0).all()
        assert np.array_equal(values, floor)
        assert stats.degraded_predictions == len(requests)

    def test_scalar_predict_walks_the_ladder(
        self, tiny_predictor, requests, baseline
    ):
        injector = FaultInjector(
            FaultPolicy(name="kill0", error_rate=1.0, shards=(0,))
        )
        with make_router(
            tiny_predictor, n_shards=3, fault_injector=injector
        ) as router:
            for request in requests[:40]:
                value = router.predict(
                    "cluster1", request.features, request.signatures
                )
                assert value == baseline.predict(
                    request.features, request.signatures
                )

    def test_predict_table_survives_chaos(self, tiny_predictor, requests, baseline):
        from repro.features.table import FeatureTable

        table = FeatureTable.from_inputs(
            [r.features for r in requests], [r.signatures for r in requests]
        )
        expected = baseline.predict_table(table)
        injector = FaultInjector(
            FaultPolicy(name="kill0", error_rate=1.0, shards=(0,))
        )
        with make_router(
            tiny_predictor, n_shards=3, fault_injector=injector
        ) as router:
            assert np.array_equal(router.predict_table("cluster1", table), expected)

    def test_timeouts_are_classified(self, tiny_predictor, requests):
        injector = FaultInjector(
            FaultPolicy(name="slow0", timeout_rate=1.0, shards=(0,))
        )
        with make_router(
            tiny_predictor, n_shards=2, fault_injector=injector
        ) as router:
            router.predict_batch("cluster1", requests)
            health = router.resilience_stats()
        assert health[0].timeouts > 0
        assert health[0].timeouts == health[0].failures

    def test_chaos_replay_is_deterministic(self, tiny_predictor, requests):
        def run_once():
            injector = FaultInjector(SCENARIOS["mixed_chaos"])
            with make_router(
                tiny_predictor, n_shards=3, fault_injector=injector
            ) as router:
                values = router.predict_batch("cluster1", requests)
                return values, router.fault_stats(), router.stats()

        values_a, faults_a, stats_a = run_once()
        values_b, faults_b, stats_b = run_once()
        assert np.array_equal(values_a, values_b)
        assert faults_a == faults_b
        assert stats_a == stats_b

    def test_persistent_failure_opens_the_breaker(self, tiny_predictor, requests):
        injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
        resilience = ResilienceConfig(failure_threshold=3, cooldown_calls=64)
        with make_router(
            tiny_predictor,
            n_shards=1,
            resilience=resilience,
            fault_injector=injector,
        ) as router:
            for i in range(10):
                router.predict_batch("cluster1", requests[i * 4 : i * 4 + 4])
            stats = router.stats()
            health = router.resilience_stats()
        assert stats.breaker_opens >= 1
        assert health[0].state is BreakerState.OPEN
        assert health[0].rejected > 0
        # Breaker-rejected calls degrade without consulting the injector:
        # far fewer injected faults than calls issued.
        assert router.fault_stats()["error"] < 10

    def test_reset_stats_clears_the_reliability_counters(
        self, tiny_predictor, requests
    ):
        injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
        with make_router(
            tiny_predictor, n_shards=2, fault_injector=injector
        ) as router:
            router.predict_batch("cluster1", requests[:40])
            assert router.stats().degraded_predictions > 0
            router.reset_stats()
            stats = router.stats()
            assert stats.degraded_predictions == 0
            assert stats.retries == 0
            assert router.fault_stats()["total"] == 0

    def test_fail_fast_router_propagates_faults(self, tiny_predictor, requests):
        """resilience=None measures the pre-ladder blast radius: the
        injected fault escapes as a ShardError naming its shard."""
        injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
        with make_router(
            tiny_predictor, n_shards=2, resilience=None, fault_injector=injector
        ) as router:
            with pytest.raises(ShardError) as err:
                router.predict_batch("cluster1", requests)
            assert err.value.shard is not None


# ------------------------------------------------------------------ #
# Fan-out failure semantics (no orphaned stragglers, shard id attached)
# ------------------------------------------------------------------ #


class TestFanOutFailure:
    @pytest.fixture()
    def boom(self):
        def _raise(*args, **kwargs):
            raise RuntimeError("boom")

        return _raise

    def _owner(self, router, requests):
        return router.shard_for("cluster1", requests[0].signatures.approx)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_failure_names_the_shard(
        self, tiny_predictor, requests, boom, monkeypatch, workers
    ):
        with make_router(
            tiny_predictor, n_shards=4, n_workers=workers, resilience=None
        ) as router:
            shard = self._owner(router, requests)
            monkeypatch.setattr(
                router.service_for("cluster1", shard), "predict_batch", boom
            )
            with pytest.raises(ShardError) as err:
                router.predict_batch("cluster1", requests)
            assert err.value.shard == shard
            assert "fan-out" in str(err.value)
            assert err.value.__cause__ is not None

    def test_pool_failure_leaves_the_router_usable(
        self, tiny_predictor, requests, baseline, boom, monkeypatch
    ):
        """After a failed fan-out every straggler was awaited; the next
        call on the same pool still merges bitwise-correct results."""
        expected = baseline.predict_batch(requests)
        with make_router(
            tiny_predictor, n_shards=4, n_workers=2, resilience=None
        ) as router:
            shard = self._owner(router, requests)
            service = router.service_for("cluster1", shard)
            original = service.predict_batch
            monkeypatch.setattr(service, "predict_batch", boom)
            with pytest.raises(ShardError):
                router.predict_batch("cluster1", requests)
            monkeypatch.setattr(service, "predict_batch", original)
            assert np.array_equal(
                router.predict_batch("cluster1", requests), expected
            )

    def test_ladder_contains_what_fan_out_would_propagate(
        self, tiny_predictor, requests, baseline, boom, monkeypatch
    ):
        """The same dead shard that aborts the fail-fast router is absorbed
        by the hardened router's ladder."""
        expected = baseline.predict_batch(requests)
        with make_router(tiny_predictor, n_shards=4, n_workers=2) as router:
            shard = self._owner(router, requests)
            monkeypatch.setattr(
                router.service_for("cluster1", shard), "predict_batch", boom
            )
            values = router.predict_batch("cluster1", requests)
        assert np.array_equal(values, expected)


# ------------------------------------------------------------------ #
# Hedged requests under a latency SLO
# ------------------------------------------------------------------ #


class TestHedging:
    def hedged_resilience(self, threshold=0.001) -> ResilienceConfig:
        return ResilienceConfig(hedge_threshold_s=threshold)

    def _serve(self, router, requests):
        """Per-request serving: each request is its own fault token, so a
        15% latency rate actually produces spiking owners to hedge past
        (one 400-row batch would only draw three sub-batch tokens)."""
        return [
            router.predict("cluster1", r.features, r.signatures)
            for r in requests
        ]

    def test_hedged_answers_are_bitwise_identical(
        self, tiny_predictor, requests, baseline
    ):
        """Hedging changes *when* an answer arrives, never *what* it is:
        the ring successor prices from the same read-only model bank."""
        subset = requests[:200]
        expected = [
            baseline.predict(r.features, r.signatures) for r in subset
        ]
        with make_router(
            tiny_predictor,
            n_shards=3,
            fault_injector=FaultInjector(SCENARIOS["latency_spikes"]),
            resilience=self.hedged_resilience(),
        ) as hedged:
            values = self._serve(hedged, subset)
            hedge_stats = hedged.hedge_stats()
            stats = hedged.stats()
        assert values == expected
        assert hedge_stats["hedges"] > 0
        assert hedge_stats["hedge_wins"] == hedge_stats["hedges"]
        assert stats.hedged_requests == hedge_stats["hedges"]

    def test_hedged_run_matches_unhedged_run_bitwise(
        self, tiny_predictor, requests
    ):
        subset = requests[:200]

        def run(resilience):
            injector = FaultInjector(SCENARIOS["latency_spikes"])
            with make_router(
                tiny_predictor,
                n_shards=3,
                fault_injector=injector,
                resilience=resilience,
            ) as router:
                return self._serve(router, subset), router.hedge_stats()

        unhedged_values, unhedged_stats = run(ResilienceConfig())
        hedged_values, hedged_stats = run(self.hedged_resilience())
        assert hedged_values == unhedged_values
        assert unhedged_stats == {"hedges": 0, "hedge_wins": 0}
        assert hedged_stats["hedges"] > 0

    def test_zero_fault_path_never_hedges(
        self, tiny_predictor, requests, baseline
    ):
        """A latency budget without an injector must cost nothing: outputs
        and counters stay identical to the plain hardened router."""
        expected = baseline.predict_batch(requests)
        with make_router(
            tiny_predictor, n_shards=3, resilience=self.hedged_resilience()
        ) as router:
            values = router.predict_batch("cluster1", requests)
            hedge_stats = router.hedge_stats()
            stats = router.stats()
        with make_router(tiny_predictor, n_shards=3) as plain:
            plain_stats_obj = plain.stats()
            plain.predict_batch("cluster1", requests)
            plain_stats = plain.stats()
        assert np.array_equal(values, expected)
        assert hedge_stats == {"hedges": 0, "hedge_wins": 0}
        assert stats == plain_stats
        assert stats.hedged_requests == 0

    def test_single_shard_has_no_successor_to_hedge_to(
        self, tiny_predictor, requests
    ):
        with make_router(
            tiny_predictor,
            n_shards=1,
            fault_injector=FaultInjector(SCENARIOS["latency_spikes"]),
            resilience=self.hedged_resilience(),
        ) as router:
            self._serve(router, requests[:100])
            assert router.hedge_stats()["hedges"] == 0

    def test_budget_above_the_spike_never_fires(self, tiny_predictor, requests):
        """A spike inside the budget is not an SLO violation: wait it out."""
        spike = SCENARIOS["latency_spikes"].latency_spike_s
        with make_router(
            tiny_predictor,
            n_shards=3,
            fault_injector=FaultInjector(SCENARIOS["latency_spikes"]),
            resilience=self.hedged_resilience(threshold=spike * 10),
        ) as router:
            self._serve(router, requests[:100])
            assert router.hedge_stats()["hedges"] == 0

    def test_reset_stats_clears_hedge_counters(self, tiny_predictor, requests):
        with make_router(
            tiny_predictor,
            n_shards=3,
            fault_injector=FaultInjector(SCENARIOS["latency_spikes"]),
            resilience=self.hedged_resilience(),
        ) as router:
            self._serve(router, requests[:200])
            assert router.hedge_stats()["hedges"] > 0
            router.reset_stats()
            assert router.hedge_stats() == {"hedges": 0, "hedge_wins": 0}
            assert router.stats().hedged_requests == 0


# ------------------------------------------------------------------ #
# Durable breaker state across router restarts
# ------------------------------------------------------------------ #


class TestHealthDurability:
    def _open_breaker(self, router, requests):
        for i in range(10):
            router.predict_batch("cluster1", requests[i * 4 : i * 4 + 4])

    def test_restart_resumes_breaker_state(self, tiny_predictor, requests):
        """A restarted router restored from the dead process's snapshot
        keeps the breaker OPEN instead of re-exposing the fleet."""
        injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
        resilience = ResilienceConfig(failure_threshold=3, cooldown_calls=64)
        with make_router(
            tiny_predictor,
            n_shards=1,
            resilience=resilience,
            fault_injector=injector,
        ) as router:
            self._open_breaker(router, requests)
            assert router.resilience_stats()[0].state is BreakerState.OPEN
            payload = router.export_health()

        with make_router(
            tiny_predictor, n_shards=1, resilience=resilience
        ) as restarted:
            assert restarted.resilience_stats()[0].state is BreakerState.CLOSED
            restarted.restore_health(payload)
            after = restarted.resilience_stats()[0]
            # The full breaker state (incl. mid-cooldown position) survives.
            assert restarted.export_health() == payload
        assert after.state is BreakerState.OPEN
        assert after.failures == router.resilience_stats()[0].failures

    def test_export_without_resilience_raises(self, tiny_predictor):
        with make_router(tiny_predictor, n_shards=2, resilience=None) as router:
            with pytest.raises(ValueError):
                router.export_health()
            with pytest.raises(ValueError):
                router.restore_health({})

    def test_shard_count_mismatch_rejected(self, tiny_predictor):
        with make_router(tiny_predictor, n_shards=3) as router:
            payload = router.export_health()
        with make_router(tiny_predictor, n_shards=2) as smaller:
            with pytest.raises(ValueError):
                smaller.restore_health(payload)

    def test_half_open_probe_readmitted_after_restart(self):
        """A probe that died with the old process must not wedge the
        breaker: the restored HALF_OPEN state re-admits exactly one."""
        config = ResilienceConfig(failure_threshold=2, cooldown_calls=3, window=8)
        health = ShardHealth(0, config)
        health.record_failure()
        health.record_failure()
        for _ in range(3):
            health.allow()
        assert health.allow()  # probe admitted, now in flight
        assert health.state is BreakerState.HALF_OPEN

        restored = ShardHealth(0, config)
        restored.restore(health.snapshot())
        assert restored.state is BreakerState.HALF_OPEN
        assert restored.allow()  # the orphaned probe slot is re-admitted
        assert not restored.allow()  # still one probe at a time
