"""Cross-process determinism of the sharded serving tier.

Shard routing must not depend on ``PYTHONHASHSEED``: the same ``(cluster,
template)`` pair has to land on the same shard in every serving process, or
replicas of one router would answer from different caches and the fleet's
template affinity (and with it the bitwise-parity guarantee) would silently
break between deploys.  Routing therefore goes through
``repro.common.hashing.stable_hash`` end to end — the builtin ``hash`` is
salted per process and is banned from the path (the PR-2 workload-planner
incident: a ``set``'s salted iteration order flipping plan ties across
processes).

In-process tests cannot catch a salted-hash leak, so these spawn real
subprocesses with different hash seeds and compare fingerprints.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Pure routing: fingerprint the owning shard of many (cluster, template)
#: pairs across several ring sizes.  No models, so it is cheap enough to
#: run at three hash seeds.
_ROUTING_SCRIPT = """
import hashlib
from repro.serving.shard import HashRing, route_key

payload = []
for n_shards in (1, 2, 4, 7):
    ring = HashRing(n_shards)
    payload.append(
        [
            ring.shard_for_key(route_key(f"cluster{t % 3}", t))
            for t in range(5000)
        ]
    )
print(hashlib.sha256(repr(payload).encode()).hexdigest())
"""

#: End to end: train the tiny bundle, serve one batch through the router at
#: 1/2/4 shards, and fingerprint shard assignments plus the merged
#: prediction bytes.  Asserts in-process that every configuration is
#: bitwise identical to a single-process ``CleoService`` — so equal
#: digests across seeds pin both the routing *and* the merged values.
_SERVING_SCRIPT = """
import hashlib
import numpy as np
from repro.experiments.shared import get_bundle
from repro.serving import CleoService, PredictionRequest
from repro.serving.shard import ShardedCleoRouter

bundle = get_bundle("cluster1", scale="tiny", seed=0)
predictor = bundle.predictor()
records = list(bundle.log.operator_records())[:400]
requests = [PredictionRequest.for_record(r) for r in records]
baseline = CleoService(predictor).predict_batch(requests)
lines = [baseline.tobytes().hex()]
for n_shards in (1, 2, 4):
    with ShardedCleoRouter(
        {"cluster1": predictor}, n_shards=n_shards, n_workers=2
    ) as router:
        owners = [
            router.shard_for("cluster1", r.signatures.approx) for r in requests
        ]
        values = router.predict_batch("cluster1", requests)
    assert np.array_equal(values, baseline), f"{n_shards} shards diverged"
    lines.append(repr(owners) + values.tobytes().hex())
print(hashlib.sha256("\\n".join(lines).encode()).hexdigest())
"""


def _run_with_hash_seed(script: str, hash_seed: str, timeout: int = 600) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
        check=True,
    )
    return result.stdout.strip()


def test_shard_routing_identical_across_hash_seeds():
    digests = {
        _run_with_hash_seed(_ROUTING_SCRIPT, seed, timeout=120)
        for seed in ("0", "42", "1234")
    }
    assert len(digests) == 1, (
        "HashRing/route_key produced different shard assignments under "
        "different PYTHONHASHSEED values - a builtin hash() leaked into "
        "the routing path"
    )


def test_sharded_serving_identical_across_hash_seeds():
    """1/2/4-shard configs: same shard owners, same merged predictions,
    bitwise identical to single-process serving, in every process."""
    digest_a = _run_with_hash_seed(_SERVING_SCRIPT, "0")
    digest_b = _run_with_hash_seed(_SERVING_SCRIPT, "42")
    assert digest_a == digest_b, (
        "sharded serving produced different shard assignments or merged "
        "predictions under different PYTHONHASHSEED values"
    )


#: Chaos replay: the hardened router under the mixed_chaos fault scenario.
#: Fault decisions are content-keyed through stable hashing, so the
#: injected faults, the ladder's answers, and the reliability counters
#: must be identical in every process regardless of the hash seed.
_CHAOS_SCRIPT = """
import hashlib
import numpy as np
from repro.experiments.shared import get_bundle
from repro.serving import PredictionRequest
from repro.serving.faults import SCENARIOS, FaultInjector
from repro.serving.shard import ShardedCleoRouter

bundle = get_bundle("cluster1", scale="tiny", seed=0)
predictor = bundle.predictor()
records = list(bundle.log.operator_records())[:300]
requests = [PredictionRequest.for_record(r) for r in records]
lines = []
for n_shards in (2, 3):
    injector = FaultInjector(SCENARIOS["mixed_chaos"])
    with ShardedCleoRouter(
        {"cluster1": predictor}, n_shards=n_shards, fault_injector=injector
    ) as router:
        values = router.predict_batch("cluster1", requests)
        stats = router.stats()
        faults = router.fault_stats()
    assert np.isfinite(values).all() and (values >= 0.0).all()
    lines.append(
        values.tobytes().hex()
        + repr(sorted(faults.items()))
        + repr((stats.retries, stats.degraded_predictions))
    )
print(hashlib.sha256("\\n".join(lines).encode()).hexdigest())
"""


def test_chaos_replay_identical_across_hash_seeds():
    """Injected faults and ladder outcomes replay bitwise across
    processes: no builtin hash(), RNG state, or wall clock in the fault
    path."""
    digest_a = _run_with_hash_seed(_CHAOS_SCRIPT, "0")
    digest_b = _run_with_hash_seed(_CHAOS_SCRIPT, "42")
    assert digest_a == digest_b, (
        "chaos injection produced different faults or degraded answers "
        "under different PYTHONHASHSEED values - a salted hash or RNG "
        "leaked into the fault-decision path"
    )

#: Restart round-trip: one process builds durable state — a stepped
#: lifecycle manager, an OPEN breaker fleet, a quarantine ledger — and
#: dies; a second process (different hash seed) resumes from disk alone
#: and fingerprints what it serves.  Equal digests across seed orderings
#: pin the save -> kill -> load -> serve path end to end.
_RESTART_SAVE_SCRIPT = """
import json
from pathlib import Path
from repro.core.config import ModelKind
from repro.core.lifecycle import LifecycleManager, RetrainPolicy
from repro.core.regression_control import ModelQuarantine
from repro.core.serialization import quarantine_to_dict, save_json_atomic
from repro.experiments.shared import get_bundle
from repro.serving import PredictionRequest
from repro.serving.faults import FaultInjector, FaultPolicy
from repro.serving.shard import ShardedCleoRouter
from repro.serving.shard.health import ResilienceConfig

state = Path(__STATE_DIR__)
bundle = get_bundle("cluster1", scale="tiny", seed=0)

manager = LifecycleManager(
    policy=RetrainPolicy(window_days=2, frequency_days=1),
    state_path=state / "lifecycle.json",
)
for day in bundle.log.days[2:]:
    manager.step(bundle.log, day)

predictor = bundle.predictor()
records = list(bundle.log.operator_records())[:100]
requests = [PredictionRequest.for_record(r) for r in records]
injector = FaultInjector(FaultPolicy(name="killall", error_rate=1.0))
with ShardedCleoRouter(
    {"cluster1": predictor},
    n_shards=2,
    resilience=ResilienceConfig(failure_threshold=3, cooldown_calls=64),
    fault_injector=injector,
) as router:
    for i in range(10):
        router.predict_batch("cluster1", requests[i * 4 : i * 4 + 4])
    save_json_atomic(router.export_health(), state / "health.json")

quarantine = ModelQuarantine(tolerance_factor=4.0, min_observations=1)
store = predictor.store
for signature in sorted(store.models[ModelKind.OP_SUBGRAPH])[:3]:
    quarantine.record(ModelKind.OP_SUBGRAPH, signature)
save_json_atomic(quarantine_to_dict(quarantine), state / "quarantine.json")
print("saved")
"""

_RESTART_RESUME_SCRIPT = """
import hashlib
import json
from pathlib import Path
from repro.core.lifecycle import LifecycleManager, RetrainPolicy
from repro.core.serialization import (
    predictor_from_dict,
    predictor_to_dict,
    quarantine_from_dict,
)
from repro.experiments.shared import get_bundle
from repro.serving import PredictionRequest
from repro.serving.shard import ShardedCleoRouter
from repro.serving.shard.health import ResilienceConfig

state = Path(__STATE_DIR__)
bundle = get_bundle("cluster1", scale="tiny", seed=0)
records = list(bundle.log.operator_records())[:100]
lines = []

manager = LifecycleManager.resume(
    state / "lifecycle.json",
    policy=RetrainPolicy(window_days=2, frequency_days=1),
)
served = [
    manager.registry.active().predictor.predict_record(r) for r in records
]
lines.append(repr((manager.registry.version_count, served)))

predictor = bundle.predictor()
requests = [PredictionRequest.for_record(r) for r in records]
with ShardedCleoRouter(
    {"cluster1": predictor},
    n_shards=2,
    resilience=ResilienceConfig(failure_threshold=3, cooldown_calls=64),
) as router:
    router.restore_health(json.loads((state / "health.json").read_text()))
    health = router.resilience_stats()
    values = router.predict_batch("cluster1", requests)
lines.append(
    repr([(h.state.value, h.failures, h.breaker_opens) for h in health])
)
lines.append(values.tobytes().hex())

quarantine = quarantine_from_dict(
    json.loads((state / "quarantine.json").read_text())
)
fresh = predictor_from_dict(predictor_to_dict(predictor))
removed = quarantine.replay(fresh.store)
lines.append(repr((removed, sorted(quarantine.ledger()))))
print(hashlib.sha256("\\n".join(lines).encode()).hexdigest())
"""


def _restart_round_trip(tmp_path, save_seed: str, resume_seed: str) -> str:
    state_dir = tmp_path / f"state-{save_seed}-{resume_seed}"
    state_dir.mkdir()
    assert (
        _run_with_hash_seed(
            _RESTART_SAVE_SCRIPT.replace("__STATE_DIR__", repr(str(state_dir))),
            save_seed,
        )
        == "saved"
    )
    return _run_with_hash_seed(
        _RESTART_RESUME_SCRIPT.replace("__STATE_DIR__", repr(str(state_dir))),
        resume_seed,
    )


def test_restart_round_trip_identical_across_hash_seeds(tmp_path):
    """Kill -> restart determinism: the process that resumes from durable
    state serves the same versions, breaker states, quarantine ledger, and
    prediction bytes no matter which hash seed either process ran under."""
    digest_a = _restart_round_trip(tmp_path, "0", "42")
    digest_b = _restart_round_trip(tmp_path, "42", "0")
    assert digest_a == digest_b, (
        "resuming from durable state produced different registry versions, "
        "breaker states, or prediction bytes under different PYTHONHASHSEED "
        "values - the save/load path is not deterministic"
    )
