"""Tests for serving-boundary validation and model quarantine.

Input side: requests carrying non-finite features (or misaligned
sequences) are rejected with a typed
:class:`~repro.common.errors.FeatureValidationError` — which is also a
``ValueError``, so pre-existing ``except ValueError`` callers keep
working — instead of being priced into garbage.

Output side: a model that emits NaN/inf/negative predictions is caught
red-handed at the service boundary, removed from the
:class:`~repro.core.model_store.ModelStore` via
:class:`~repro.core.regression_control.ModelQuarantine` (the bank
recompiles without it), and the offending rows are repriced through the
fallback chain — the caller always receives finite, non-negative costs.
"""

from __future__ import annotations

import copy
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.common.errors import FeatureValidationError, ValidationError
from repro.core.model_store import signature_for
from repro.core.predictor import CleoPredictor
from repro.features.table import FeatureTable
from repro.serving import CleoService, PredictionRequest
from repro.serving.shard import ShardedCleoRouter

# ------------------------------------------------------------------ #
# Fixtures
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def records(tiny_bundle):
    return list(tiny_bundle.log.operator_records())[:200]


@pytest.fixture(scope="module")
def requests(records):
    return [PredictionRequest.for_record(r) for r in records]


def corrupt_most_specific(store, bundle):
    """NaN-poison and republish the store's most specific model for
    ``bundle``, so the packed bank recompiles with the bad parameters —
    the way a model broken at training time actually reaches serving."""
    kind, model = store.most_specific(bundle)
    model._net.coef_ = np.full_like(model._net.coef_, np.nan)
    signature = signature_for(kind, bundle)
    store.add(kind, signature, model)
    return kind, signature


@pytest.fixture()
def corrupt_service(tiny_bundle, records):
    """A store-only service whose most specific model for record 0 is NaN.

    Store-only (no combined meta-ensemble) because tree ensembles route
    NaN features to finite leaves — the combined model would mask the
    poisoned individual model instead of exposing it.
    """
    store = copy.deepcopy(tiny_bundle.predictor().store)
    kind, signature = corrupt_most_specific(store, records[0].signatures)
    service = CleoService(CleoPredictor(store=store, combined=None))
    return service, store, kind, signature


# ------------------------------------------------------------------ #
# Input validation
# ------------------------------------------------------------------ #


class TestInputValidation:
    def test_error_type_is_both_validation_and_value_error(self):
        assert issubclass(FeatureValidationError, ValidationError)
        assert issubclass(FeatureValidationError, ValueError)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_scalar_predict_rejects_non_finite_features(
        self, tiny_predictor, requests, bad
    ):
        service = CleoService(tiny_predictor)
        request = requests[0]
        poisoned = replace(request.features, input_card=bad)
        with pytest.raises(FeatureValidationError):
            service.predict(poisoned, request.signatures)

    def test_batch_rejects_non_finite_features(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        poisoned = PredictionRequest(
            replace(requests[3].features, avg_row_bytes=float("nan")),
            requests[3].signatures,
        )
        with pytest.raises(FeatureValidationError):
            service.predict_batch([*requests[:3], poisoned])

    def test_table_rejects_non_finite_features(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        table = FeatureTable.from_inputs(
            [r.features for r in requests[:10]],
            [r.signatures for r in requests[:10]],
        )
        table.output_card[4] = float("inf")
        with pytest.raises(FeatureValidationError):
            service.predict_table(table)

    def test_table_requires_signatures(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        bare = FeatureTable.from_inputs([r.features for r in requests[:5]])
        with pytest.raises(FeatureValidationError):
            service.predict_table(bare)

    def test_misaligned_sequences_rejected(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        with pytest.raises(FeatureValidationError):
            service.predict_inputs(
                [r.features for r in requests[:4]],
                [r.signatures for r in requests[:3]],
            )

    def test_plan_batch_misalignment_rejected(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        inputs = [r.features for r in requests[:4]]
        bundles = [r.signatures for r in requests[:4]]
        with pytest.raises(FeatureValidationError):
            service.predict_plan_batch(inputs, bundles, lengths=[3])

    def test_validation_can_be_disabled(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor, validate_inputs=False)
        request = requests[0]
        poisoned = replace(request.features, input_card=float("nan"))
        # No raise: the request is priced (garbage in, *bounded* garbage
        # out — output validation still guards the result).
        value = service.predict(poisoned, request.signatures)
        assert math.isfinite(value)

    def test_router_propagates_validation_errors(self, tiny_predictor, requests):
        """The ladder must re-raise caller bugs, not degrade them."""
        poisoned = PredictionRequest(
            replace(requests[0].features, input_card=float("nan")),
            requests[0].signatures,
        )
        with ShardedCleoRouter({"cluster1": tiny_predictor}, n_shards=2) as router:
            with pytest.raises(FeatureValidationError):
                router.predict_batch("cluster1", [poisoned])
            with pytest.raises(FeatureValidationError):
                router.predict_inputs(
                    "cluster1",
                    [r.features for r in requests[:2]],
                    [r.signatures for r in requests[:3]],
                )
            stats = router.stats()
        assert stats.degraded_predictions == 0
        assert stats.retries == 0


# ------------------------------------------------------------------ #
# Output validation and quarantine
# ------------------------------------------------------------------ #


class TestOutputValidationAndQuarantine:
    def test_unvalidated_service_leaks_nan(self, corrupt_service, records):
        service, _, _, _ = corrupt_service
        leaky = CleoService(
            service.predictor, validate_inputs=False, validate_outputs=False
        )
        value = leaky.predict(records[0].features, records[0].signatures)
        assert not math.isfinite(value)

    def test_scalar_repair_quarantines_the_offender(
        self, corrupt_service, records
    ):
        service, store, kind, signature = corrupt_service
        assert store.get(kind, signature) is not None
        value = service.predict(records[0].features, records[0].signatures)
        assert math.isfinite(value) and value >= 0.0
        assert store.get(kind, signature) is None
        stats = service.stats()
        assert stats.quarantined_models == 1
        assert stats.degraded_predictions >= 1
        assert "quarantined" in stats.describe()

    def test_batch_repair_keeps_every_row_finite(self, corrupt_service, requests):
        service, store, kind, signature = corrupt_service
        values = service.predict_batch(requests)
        assert np.isfinite(values).all() and (values >= 0.0).all()
        assert store.get(kind, signature) is None
        assert service.stats().quarantined_models == 1

    def test_table_repair_keeps_every_row_finite(self, corrupt_service, requests):
        service, _, _, _ = corrupt_service
        table = FeatureTable.from_inputs(
            [r.features for r in requests], [r.signatures for r in requests]
        )
        values = service.predict_table(table)
        assert np.isfinite(values).all() and (values >= 0.0).all()
        assert service.stats().quarantined_models == 1

    def test_second_pass_is_idempotent(self, corrupt_service, requests):
        """After the quarantine the bank recompiles without the offender:
        replaying the batch neither re-quarantines nor re-degrades."""
        service, _, _, _ = corrupt_service
        first = service.predict_batch(requests)
        after_first = service.stats()
        second = service.predict_batch(requests)
        after_second = service.stats()
        assert np.array_equal(first, second)
        assert after_second.quarantined_models == after_first.quarantined_models
        assert (
            after_second.degraded_predictions == after_first.degraded_predictions
        )

    def test_clean_models_are_never_quarantined(self, tiny_predictor, requests):
        service = CleoService(tiny_predictor)
        before = tiny_predictor.store.count()
        service.predict_batch(requests)
        assert service.stats().quarantined_models == 0
        assert service.stats().degraded_predictions == 0
        assert tiny_predictor.store.count() == before

    def test_sharded_router_contains_a_poisoned_model(
        self, tiny_bundle, records, requests
    ):
        """End to end: a NaN model behind one shard of the fleet is
        quarantined by that shard's service and every answer stays
        finite."""
        store = copy.deepcopy(tiny_bundle.predictor().store)
        corrupt_most_specific(store, records[0].signatures)
        predictor = CleoPredictor(store=store, combined=None)
        with ShardedCleoRouter({"cluster1": predictor}, n_shards=3) as router:
            values = router.predict_batch("cluster1", requests)
            stats = router.stats()
        assert np.isfinite(values).all() and (values >= 0.0).all()
        assert stats.quarantined_models >= 1

    def test_negative_predictions_also_trigger_repair(
        self, tiny_bundle, requests
    ):
        """Output validation rejects negative costs, not just non-finite
        ones.  The stock regressors clamp at zero, so a negative value can
        only reach serving through a foreign/corrupted transport — drive
        the repair helper with one directly."""
        store = copy.deepcopy(tiny_bundle.predictor().store)
        service = CleoService(CleoPredictor(store=store, combined=None))
        values = np.array([1.0, -5.0, 2.0])
        repaired = service._validated_values(
            values,
            [r.features for r in requests[:3]],
            [r.signatures for r in requests[:3]],
        )
        assert repaired[0] == 1.0 and repaired[2] == 2.0
        assert math.isfinite(repaired[1]) and repaired[1] >= 0.0
        stats = service.stats()
        assert stats.degraded_predictions == 1
        # No model actually misbehaved, so nothing was quarantined.
        assert stats.quarantined_models == 0
