"""Tests for the sharded serving tier (``repro.serving.shard``).

The load-bearing guarantees:

* routing is a pure function of ``(cluster, template signature)`` through
  ``stable_hash`` — no builtin ``hash`` anywhere on the path;
* every batch entry point merges per-shard results back in input order,
  **bitwise identical** to one single-process ``CleoService`` pricing the
  whole batch, for any shard/worker count;
* fleet statistics aggregate exactly (no counters lost to sharding or to
  concurrent fan-out).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.common.hashing import stable_hash
from repro.features.table import FeatureTable
from repro.serving import CleoService, PredictionRequest
from repro.serving.service import ServiceStats
from repro.serving.shard import HashRing, ShardedCleoRouter, route_key
from repro.serving.shard.routing import _RING_SALT

# ------------------------------------------------------------------ #
# Fixtures
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def records(tiny_bundle):
    """A deterministic slice of the tiny workload's operator stream."""
    records = list(tiny_bundle.log.operator_records())[:600]
    assert len(records) == 600
    return records


@pytest.fixture(scope="module")
def requests(records):
    return [PredictionRequest.for_record(r) for r in records]


@pytest.fixture()
def baseline(tiny_predictor):
    return CleoService(tiny_predictor)


def make_router(tiny_predictor, **kwargs) -> ShardedCleoRouter:
    return ShardedCleoRouter({"cluster1": tiny_predictor}, **kwargs)


# ------------------------------------------------------------------ #
# Hash ring
# ------------------------------------------------------------------ #


class TestHashRing:
    def test_rejects_bad_topologies(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        keys = np.arange(1000, dtype=np.uint64)
        assert ring.shard_for_key(12345) == 0
        assert np.all(ring.shards_for_keys(keys) == 0)

    def test_positions_come_from_stable_hash(self):
        """Virtual nodes sit exactly at stable_hash(salt, shard, replica)."""
        ring = HashRing(3, replicas=8)
        expected = {
            stable_hash(_RING_SALT, shard, replica): shard
            for shard in range(3)
            for replica in range(8)
        }
        for position, owner in zip(ring._positions, ring._owners):
            assert expected[int(position)] == int(owner)

    def test_vectorized_matches_scalar_lookup(self):
        ring = HashRing(4)
        keys = np.array(
            [route_key("cluster1", t) for t in range(500)], dtype=np.uint64
        )
        vectorized = ring.shards_for_keys(keys)
        scalar = np.array([ring.shard_for_key(int(k)) for k in keys])
        assert np.array_equal(vectorized, scalar)

    def test_every_shard_owns_some_keys(self):
        ring = HashRing(4)
        keys = np.array(
            [route_key("cluster1", t) for t in range(2000)], dtype=np.uint64
        )
        spread = np.bincount(ring.shards_for_keys(keys), minlength=4)
        assert np.all(spread > 0)

    def test_route_key_is_stable_hash(self):
        assert route_key("cluster1", 77) == stable_hash("cluster1", 77)


# ------------------------------------------------------------------ #
# Routing through the router
# ------------------------------------------------------------------ #


class TestRouting:
    def test_needs_at_least_one_cluster(self):
        with pytest.raises(ValueError):
            ShardedCleoRouter({})

    def test_rejects_bad_worker_count(self, tiny_predictor):
        with pytest.raises(ValueError):
            make_router(tiny_predictor, n_workers=0)

    def test_unknown_cluster_raises(self, tiny_predictor, requests):
        with make_router(tiny_predictor, n_shards=2) as router:
            with pytest.raises(KeyError):
                router.predict_batch("nope", requests[:4])
            with pytest.raises(KeyError):
                router.shard_for("nope", 1)

    def test_template_affinity(self, tiny_predictor, requests):
        """Every request of a template lands on one shard, so per-shard
        in-batch deduplication sees every duplicate a single service would."""
        with make_router(tiny_predictor, n_shards=4) as router:
            owners: dict[int, int] = {}
            for request in requests:
                shard = router.shard_for("cluster1", request.signatures.approx)
                assert owners.setdefault(request.signatures.approx, shard) == shard

    def test_routing_uses_only_stable_hash(self, tiny_predictor, requests):
        """Shard assignment is reproducible from stable_hash alone."""
        with make_router(tiny_predictor, n_shards=4) as router:
            ring = HashRing(4)
            for request in requests[:100]:
                approx = request.signatures.approx
                expected = ring.shard_for_key(stable_hash("cluster1", int(approx)))
                assert router.shard_for("cluster1", approx) == expected

    def test_accepts_service_as_predictor(self, tiny_predictor, requests, baseline):
        """A CleoService stands in for its predictor at construction."""
        with ShardedCleoRouter({"cluster1": CleoService(tiny_predictor)}) as router:
            assert np.array_equal(
                router.predict_batch("cluster1", requests[:50]),
                baseline.predict_batch(requests[:50]),
            )

    def test_default_cluster_requires_unambiguity(self, tiny_predictor):
        with ShardedCleoRouter(
            {"a": tiny_predictor, "b": tiny_predictor}
        ) as router:
            with pytest.raises(ValueError):
                router.client()
        with make_router(tiny_predictor) as router:
            assert router.client().cluster == "cluster1"


# ------------------------------------------------------------------ #
# Bitwise parity with the single-process service
# ------------------------------------------------------------------ #

CONFIGS = [(1, 1), (2, 1), (3, 2), (4, 4)]


class TestParity:
    @pytest.mark.parametrize("shards,workers", CONFIGS)
    def test_predict_batch(self, tiny_predictor, requests, baseline, shards, workers):
        expected = baseline.predict_batch(requests)
        with make_router(tiny_predictor, n_shards=shards, n_workers=workers) as router:
            assert np.array_equal(
                router.predict_batch("cluster1", requests), expected
            )

    @pytest.mark.parametrize("shards,workers", CONFIGS)
    def test_predict_inputs(self, tiny_predictor, requests, baseline, shards, workers):
        inputs = [r.features for r in requests]
        bundles = [r.signatures for r in requests]
        expected = baseline.predict_inputs(inputs, bundles)
        with make_router(tiny_predictor, n_shards=shards, n_workers=workers) as router:
            assert np.array_equal(
                router.predict_inputs("cluster1", inputs, bundles), expected
            )

    @pytest.mark.parametrize("shards,workers", CONFIGS)
    def test_predict_table(self, tiny_predictor, requests, baseline, shards, workers):
        table = FeatureTable.from_inputs(
            [r.features for r in requests], [r.signatures for r in requests]
        )
        expected = baseline.predict_table(table)
        with make_router(tiny_predictor, n_shards=shards, n_workers=workers) as router:
            assert np.array_equal(router.predict_table("cluster1", table), expected)

    def test_scalar_predict(self, tiny_predictor, requests, baseline):
        with make_router(tiny_predictor, n_shards=4) as router:
            for request in requests[:50]:
                assert router.predict(
                    "cluster1", request.features, request.signatures
                ) == baseline.predict(request.features, request.signatures)

    def test_duplicates_dedup_within_their_shard(self, tiny_predictor, requests, baseline):
        doubled = list(requests[:100]) * 2
        expected = baseline.predict_batch(doubled)
        with make_router(tiny_predictor, n_shards=4) as router:
            assert np.array_equal(
                router.predict_batch("cluster1", doubled), expected
            )
            assert router.stats().in_batch_reuses >= 100

    def test_resource_profiles(self, tiny_predictor, requests, baseline):
        inputs = [r.features for r in requests[:200]]
        bundles = [r.signatures for r in requests[:200]]
        expected = [
            baseline.resource_profile(f, s) for f, s in zip(inputs, bundles)
        ]
        with make_router(tiny_predictor, n_shards=3, n_workers=2) as router:
            assert router.resource_profiles("cluster1", inputs, bundles) == expected

    def test_predict_plan(self, tiny_bundle, tiny_predictor, baseline):
        plans = list(tiny_bundle.runner.plans.values())[:10]
        with make_router(tiny_predictor, n_shards=4, n_workers=2) as router:
            client = router.client("cluster1")
            for root in plans:
                expected = baseline.predict_plan(root, tiny_bundle.fresh_estimator())
                assert client.predict_plan(
                    root, tiny_bundle.fresh_estimator()
                ) == expected

    def test_cost_model_prices_batched(self, tiny_predictor):
        with make_router(tiny_predictor, n_shards=2) as router:
            model = router.cost_model("cluster1")
            assert model.supports_batched_pricing

    def test_explain_matches_service(self, tiny_predictor, requests, baseline):
        with make_router(tiny_predictor, n_shards=4) as router:
            for request in requests[:10]:
                ours = router.explain("cluster1", request.features, request.signatures)
                theirs = baseline.explain(request.features, request.signatures)
                assert (ours.cost, ours.source) == (theirs.cost, theirs.source)


# ------------------------------------------------------------------ #
# FeatureTable.take (the table split primitive)
# ------------------------------------------------------------------ #


class TestTableTake:
    def test_take_commutes_with_prediction(self, tiny_predictor, requests, baseline):
        table = FeatureTable.from_inputs(
            [r.features for r in requests], [r.signatures for r in requests]
        )
        rng = np.random.default_rng(7)
        idx = rng.permutation(len(table))[:250]
        full = baseline.predict_table(table)
        taken = CleoService(tiny_predictor).predict_table(table.take(idx))
        assert np.array_equal(taken, full[idx])

    def test_take_preserves_signatures(self, requests):
        table = FeatureTable.from_inputs(
            [r.features for r in requests[:20]], [r.signatures for r in requests[:20]]
        )
        sub = table.take(np.array([3, 1, 4]))
        assert len(sub) == 3
        assert sub.has_signatures
        assert np.array_equal(
            sub.signature_column("approx"),
            table.signature_column("approx")[[3, 1, 4]],
        )


# ------------------------------------------------------------------ #
# Stats aggregation and lifecycle
# ------------------------------------------------------------------ #


class TestStatsAndLifecycle:
    def test_fleet_counters_sum_exactly(self, tiny_predictor, requests):
        with make_router(tiny_predictor, n_shards=4) as router:
            router.predict_batch("cluster1", requests)
            stats = router.stats()
            assert stats.batched_predictions == len(requests)
            per_shard = router.shard_stats()
            assert sum(s.batched_predictions for s in per_shard) == len(requests)
            assert sum(s.batches for s in per_shard) == stats.batches
            assert stats.cache.requests == sum(
                s.cache.requests for s in per_shard
            )

    def test_aggregate_is_counterwise_sum(self, baseline, requests):
        baseline.predict_batch(requests[:100])
        one = baseline.stats()
        double = ServiceStats.aggregate([one, one])
        assert double.batched_predictions == 2 * one.batched_predictions
        assert double.cache.hits == 2 * one.cache.hits
        assert double.cache.capacity == 2 * one.cache.capacity

    def test_reset_and_clear(self, tiny_predictor, requests):
        with make_router(tiny_predictor, n_shards=2) as router:
            router.predict_batch("cluster1", requests[:100])
            assert router.stats().batched_predictions == 100
            assert router.lookup_count > 0
            router.reset_stats()
            router.clear_caches()
            assert router.stats().batched_predictions == 0
            assert router.stats().cache.size == 0

    def test_close_is_idempotent(self, tiny_predictor):
        router = make_router(tiny_predictor, n_workers=4)
        router.close()
        router.close()

    def test_concurrent_callers_lose_no_counters(self, tiny_predictor, requests):
        """Many client threads against one router: counters still sum."""
        with make_router(tiny_predictor, n_shards=2, n_workers=2) as router:
            errors: list[Exception] = []

            def hammer() -> None:
                try:
                    for _ in range(5):
                        router.predict_batch("cluster1", requests[:80])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert router.stats().batched_predictions == 8 * 5 * 80
