"""Tests for the default estimator, perfect feedback, and CardLearner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality.cardlearner import CardLearner
from repro.cardinality.estimator import CardinalityEstimator, EstimatorConfig
from repro.cardinality.perfect import PerfectCardinalityEstimator
from repro.plan.physical import PhysOpType


class TestDefaultEstimator:
    def test_scan_estimates_are_exact(self, physical_simple_plan, estimator):
        for op in physical_simple_plan.walk():
            if op.op_type is PhysOpType.EXTRACT:
                assert estimator.estimate(op) == op.true_card

    def test_errors_deterministic_per_template(self, physical_simple_plan):
        est1 = CardinalityEstimator()
        est2 = CardinalityEstimator()
        for op in physical_simple_plan.walk():
            assert est1.estimate(op) == est2.estimate(op)

    def test_zero_sigma_is_exact(self, physical_join_plan):
        exact = CardinalityEstimator(EstimatorConfig(sigma_scale=0.0))
        for op in physical_join_plan.walk():
            assert exact.estimate(op) == pytest.approx(op.true_card, rel=1e-9)

    def test_nonzero_sigma_errs_on_filters(self, physical_simple_plan, estimator):
        filters = [
            op for op in physical_simple_plan.walk() if op.op_type is PhysOpType.FILTER
        ]
        assert filters
        assert any(
            estimator.estimate(op) != pytest.approx(op.true_card) for op in filters
        )

    def test_capped_operators_never_exceed_input(self, physical_simple_plan, estimator):
        for op in physical_simple_plan.walk():
            if op.op_type in (PhysOpType.FILTER, PhysOpType.HASH_AGGREGATE):
                assert estimator.estimate(op) <= estimator.estimate_input(op) + 1e-6

    def test_enforcers_pass_through(self, physical_join_plan, estimator):
        for op in physical_join_plan.walk():
            if op.op_type is PhysOpType.EXCHANGE:
                assert estimator.estimate(op) == estimator.estimate(op.children[0])

    def test_estimates_nonnegative(self, physical_join_plan, estimator):
        for op in physical_join_plan.walk():
            assert estimator.estimate(op) >= 0.0

    def test_reset_clears_memo(self, physical_simple_plan, estimator):
        value = estimator.estimate(physical_simple_plan)
        estimator.reset()
        assert estimator.estimate(physical_simple_plan) == value

    def test_seed_salt_changes_errors(self, physical_simple_plan):
        a = CardinalityEstimator(EstimatorConfig(seed_salt="a"))
        b = CardinalityEstimator(EstimatorConfig(seed_salt="b"))
        values_a = [a.estimate(op) for op in physical_simple_plan.walk()]
        values_b = [b.estimate(op) for op in physical_simple_plan.walk()]
        assert values_a != values_b


class TestPerfectEstimator:
    def test_all_estimates_exact(self, physical_join_plan):
        perfect = PerfectCardinalityEstimator()
        for op in physical_join_plan.walk():
            assert perfect.estimate(op) == op.true_card
            assert perfect.error_factor(op) == 1.0


class TestCardLearner:
    def _train(self, plan, n=12):
        learner = CardLearner()
        for _ in range(n):
            learner.observe_plan(plan)
        learner.fit()
        return learner

    def test_learns_covered_templates(self, physical_simple_plan):
        learner = self._train(physical_simple_plan)
        assert learner.coverage_templates > 0

    def test_prediction_close_to_truth_on_training_plan(self, physical_simple_plan):
        learner = self._train(physical_simple_plan)
        default = CardinalityEstimator()
        improvements = 0
        comparisons = 0
        for op in physical_simple_plan.walk():
            if op.logical is None or not op.children:
                continue
            learned_err = abs(np.log(
                (learner.estimate(op) + 1) / (op.true_card + 1)
            ))
            default_err = abs(np.log(
                (default.estimate(op) + 1) / (op.true_card + 1)
            ))
            comparisons += 1
            if learned_err <= default_err + 1e-9:
                improvements += 1
        assert comparisons > 0
        assert improvements >= comparisons / 2

    def test_uncovered_falls_back_to_base(self, physical_simple_plan, physical_join_plan):
        learner = self._train(physical_simple_plan)
        base = learner.base
        for op in physical_join_plan.walk():
            if op.op_type is PhysOpType.HASH_JOIN:
                assert learner.estimate(op) == pytest.approx(base.estimate(op))

    def test_min_samples_threshold(self, physical_simple_plan):
        learner = CardLearner()
        learner.observe_plan(physical_simple_plan)  # one observation only
        learner.fit()
        assert learner.coverage_templates == 0

    def test_estimates_nonnegative(self, physical_simple_plan):
        learner = self._train(physical_simple_plan)
        for op in physical_simple_plan.walk():
            assert learner.estimate(op) >= 0.0
