"""Smoke + shape tests for the experiment modules.

Each experiment runs at tiny scale; assertions check the *paper-shape*
invariants the reproduction is supposed to preserve, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig1_motivation,
    fig2_recurring,
    fig3_adhoc,
    fig5_6_feature_weights,
    fig7_heatmap,
    fig8c_lookups,
    fig9_workload_summary,
    fig10_workload_changes,
    tab5_individual_models,
)
from repro.experiments.harness import ExperimentResult, format_table


class TestHarness:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 2.5, "b": "y"}])
        assert "a" in text and "x" in text

    def test_result_to_text(self):
        result = ExperimentResult("t", "title", rows=[{"k": 1}], series={"s": [1, 2]})
        text = result.to_text()
        assert "t: title" in text and "s:" in text

    def test_row_by(self):
        result = ExperimentResult("t", "title", rows=[{"k": 1}, {"k": 2}])
        assert result.row_by("k", 2) == {"k": 2}
        with pytest.raises(KeyError):
            result.row_by("k", 3)


class TestFig1Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_motivation.run(scale="tiny", seed=0)

    def test_all_variants_present(self, result):
        assert {r["model"] for r in result.rows} == {
            "default",
            "tuned",
            "default+perfect-card",
            "tuned+perfect-card",
        }

    def test_heuristics_weakly_correlated(self, result):
        for row in result.rows:
            assert row["pearson"] < 0.6

    def test_perfect_cards_do_not_fix_costs(self, result):
        """The paper's headline: errors remain large with perfect cards."""
        row = result.row_by("model", "default+perfect-card")
        assert row["median_error_pct"] > 40


class TestFig2Shape:
    def test_recurring_job_varies(self):
        result = fig2_recurring.run(scale="tiny", seed=0, instances=40)
        inputs = result.row_by("metric", "total input (GiB)")
        latencies = result.row_by("metric", "latency (minutes)")
        assert inputs["spread_x"] > 1.2
        assert latencies["spread_x"] > 1.2


class TestFig3Shape:
    def test_adhoc_band(self):
        result = fig3_adhoc.run(scale="tiny", seed=0)
        for row in result.rows:
            assert 2.0 <= row["adhoc_pct"] <= 30.0


class TestTab5Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return tab5_individual_models.run(scale="tiny", seed=0)

    def test_coverage_monotone_with_generality(self, result):
        cov = {r["model"]: r["coverage_pct"] for r in result.rows}
        assert cov["op_subgraph"] <= cov["op_subgraph_approx"] <= cov["op_input"]
        assert cov["operator"] >= 99.0
        assert cov["combined"] == 100.0

    def test_learned_beats_default(self, result):
        default = result.row_by("model", "Default")
        combined = result.row_by("model", "combined")
        assert combined["correlation"] > default["correlation"]
        assert combined["median_error_pct"] < default["median_error_pct"]

    def test_subgraph_most_accurate(self, result):
        subgraph = result.row_by("model", "op_subgraph")
        operator = result.row_by("model", "operator")
        assert subgraph["median_error_pct"] < operator["median_error_pct"]


class TestFig5_6Shape:
    def test_specialized_models_concentrate_weights(self):
        result = fig5_6_feature_weights.run(scale="tiny", seed=0)
        conc = {r["model"]: r["concentration"] for r in result.rows}
        assert conc["op_subgraph"] >= conc["operator"]


class TestFig7Shape:
    def test_combined_covers_all_with_quality(self):
        result = fig7_heatmap.run(scale="tiny", seed=0)
        combined = result.row_by("model", "combined")
        operator = result.row_by("model", "operator")
        assert combined["coverage_pct"] == 100.0
        assert combined["within_0.8_1.25x_pct"] >= operator["within_0.8_1.25x_pct"]


class TestFig8cShape:
    def test_lookup_ordering(self):
        result = fig8c_lookups.run()
        at_40 = {r["strategy"]: r["lookups_40_ops"] for r in result.rows}
        assert at_40["analytical"] == 200
        assert at_40["analytical"] < at_40["sampling-geometric(s=0.5)"]
        assert at_40["sampling-geometric(s=0.5)"] < at_40["sampling-geometric(s=5)"]
        assert at_40["sampling-geometric(s=5)"] < at_40["exhaustive"]


class TestFig9And10Shape:
    def test_recurring_jobs_dominate(self):
        result = fig9_workload_summary.run(scale="tiny", seed=0)
        overall = result.row_by("cluster", "overall")
        assert overall["recurring_jobs"] > 0.7 * overall["total_jobs"]
        assert overall["common_subexpr"] > 0.5 * overall["total_subexpr"]

    def test_day_over_day_changes_nonzero(self):
        result = fig10_workload_changes.run(scale="tiny", seed=0)
        assert any(abs(row["input_volume_pct"]) > 1.0 for row in result.rows)


class TestMetaAblationShape:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ablations

        return ablations.run_meta_ablation(scale="tiny", seed=0)

    def test_three_variants(self, result):
        assert len(result.rows) == 3
        assert {r["meta_features"] for r in result.rows} == {
            "predictions_only",
            "paper (pred + extras)",
            "paper + default cost",
        }

    def test_column_counts_increase(self, result):
        columns = [r["n_columns"] for r in result.rows]
        assert columns == sorted(columns)

    def test_every_variant_beats_heuristic_regime(self, result):
        # All combined variants stay far below the default model's ~200%+.
        for row in result.rows:
            assert row["median_error_pct"] < 60.0


class TestSpecializationAblationShape:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ablations

        return ablations.run_specialization_ablation(scale="tiny", seed=0)

    def test_four_points_on_the_spectrum(self, result):
        assert [r["model"] for r in result.rows] == [
            "global elastic net",
            "global fasttree",
            "per-operator collection",
            "full collection + combined",
        ]

    def test_no_one_size_fits_all_ordering(self, result):
        by_model = {r["model"]: r for r in result.rows}
        assert (
            by_model["full collection + combined"]["median_error_pct"]
            <= by_model["per-operator collection"]["median_error_pct"]
        )
        assert (
            by_model["per-operator collection"]["median_error_pct"]
            < by_model["global elastic net"]["median_error_pct"]
        )

    def test_model_counts_grow_with_specialization(self, result):
        by_model = {r["model"]: r for r in result.rows}
        assert by_model["global elastic net"]["n_models"] == 1
        assert (
            by_model["full collection + combined"]["n_models"]
            > by_model["per-operator collection"]["n_models"]
        )
