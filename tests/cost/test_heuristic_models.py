"""Tests for the default and tuned heuristic cost models."""

from __future__ import annotations

import pytest

from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import plan_cost
from repro.cost.tuned_model import TunedCostModel
from repro.plan.physical import PhysOpType


class TestDefaultCostModel:
    def test_costs_positive(self, physical_join_plan, estimator):
        model = DefaultCostModel()
        for op in physical_join_plan.walk():
            assert model.operator_cost(op, estimator) > 0

    def test_partition_override_changes_cost(self, physical_simple_plan, estimator):
        model = DefaultCostModel()
        big_ops = [
            op
            for op in physical_simple_plan.walk()
            if estimator.estimate_input(op) > 1000 and op.partition_count < 64
        ]
        assert big_ops
        op = big_ops[0]
        base = model.operator_cost(op, estimator)
        more_parallel = model.operator_cost(op, estimator, partition_override=op.partition_count * 8)
        assert more_parallel < base

    def test_row_cap_saturates(self, physical_simple_plan, estimator):
        uncapped = DefaultCostModel()
        uncapped.row_cap = float("inf")
        capped = DefaultCostModel()
        capped.row_cap = 1.0
        for op in physical_simple_plan.walk():
            assert capped.operator_cost(op, estimator) <= uncapped.operator_cost(op, estimator)

    def test_plan_cost_sums_operators(self, physical_simple_plan, estimator):
        model = DefaultCostModel()
        total = plan_cost(model, physical_simple_plan, estimator)
        manual = sum(model.operator_cost(op, estimator) for op in physical_simple_plan.walk())
        assert total == pytest.approx(manual)

    def test_deterministic(self, physical_join_plan, estimator):
        model = DefaultCostModel()
        first = [model.operator_cost(op, estimator) for op in physical_join_plan.walk()]
        second = [model.operator_cost(op, estimator) for op in physical_join_plan.walk()]
        assert first == second

    def test_udf_priced_as_compute(self, builder, planner, estimator):
        """The default model cannot distinguish Process from Compute."""
        scanned = builder.scan("events_2024_01_01")
        processed = builder.process(scanned, "udf_heavy", tag="t:udf")
        plan = planner.plan(builder.output(processed, name="o")).plan
        model = DefaultCostModel()
        process_ops = [op for op in plan.walk() if op.op_type is PhysOpType.PROCESS]
        assert process_ops
        cpu_process = model.coefficients[PhysOpType.PROCESS][0]
        cpu_compute = model.coefficients[PhysOpType.COMPUTE][0]
        assert cpu_process == cpu_compute


class TestTunedCostModel:
    def test_costs_positive(self, physical_join_plan, estimator):
        model = TunedCostModel()
        for op in physical_join_plan.walk():
            assert model.operator_cost(op, estimator) > 0

    def test_setup_term_for_partitioning_ops(self, physical_simple_plan, estimator):
        model = TunedCostModel()
        extracts = [
            op for op in physical_simple_plan.walk() if op.op_type is PhysOpType.EXTRACT
        ]
        assert extracts
        op = extracts[0]
        # With a huge partition override, the setup term must dominate and
        # the cost must grow (the default model keeps shrinking instead).
        base = model.operator_cost(op, estimator, partition_override=10)
        inflated = model.operator_cost(op, estimator, partition_override=100_000)
        assert inflated > base

    def test_differs_from_default(self, physical_join_plan, estimator):
        default = DefaultCostModel()
        tuned = TunedCostModel()
        diffs = [
            abs(default.operator_cost(op, estimator) - tuned.operator_cost(op, estimator))
            for op in physical_join_plan.walk()
        ]
        assert any(d > 1e-9 for d in diffs)
