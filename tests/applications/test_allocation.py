"""Tests for SLO-driven resource allocation (applications.allocation)."""

from __future__ import annotations

import pytest

from repro.applications.allocation import ResourceAllocator
from repro.common.errors import ValidationError
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig
from repro.plan.stages import build_stage_graph
from tests.conftest import make_test_catalog
from repro.plan.builder import PlanBuilder


@pytest.fixture()
def allocator(tiny_bundle, tiny_predictor):
    config = PlannerConfig(
        max_partitions=256, partition_strategy=AnalyticalStrategy()
    )
    return ResourceAllocator(
        tiny_predictor, tiny_bundle.fresh_estimator(), base_config=config
    )


@pytest.fixture()
def logical_plan():
    builder = PlanBuilder(make_test_catalog())
    events = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.3, tag="al:f")
    users = builder.scan("users_2024_01_01")
    joined = builder.join(events, users, keys=("user_id", "user_id"), fanout=0.5, tag="al:j")
    aggregated = builder.aggregate(joined, keys=("country",), group_count=200, tag="al:a")
    return builder.output(aggregated, name="alloc_report")


class TestCandidateBudgets:
    def test_ladder_is_strictly_increasing(self, allocator):
        budgets = allocator.candidate_budgets()
        assert budgets == sorted(set(budgets))

    def test_ladder_spans_one_to_max(self, allocator):
        budgets = allocator.candidate_budgets()
        assert budgets[0] == 1
        assert budgets[-1] == allocator.base_config.max_partitions

    def test_ladder_grows_geometrically(self, allocator):
        budgets = allocator.candidate_budgets()
        # Interior steps double (growth factor 2.0).
        for before, after in zip(budgets[1:-2], budgets[2:-1]):
            assert after == pytest.approx(before * 2, abs=1)

    def test_min_budget_respected(self, allocator):
        budgets = allocator.candidate_budgets(min_budget=32)
        assert budgets[0] == 32

    def test_bad_min_budget(self, allocator):
        with pytest.raises(ValidationError):
            allocator.candidate_budgets(min_budget=0)

    def test_bad_growth(self, tiny_predictor):
        with pytest.raises(ValidationError):
            ResourceAllocator(tiny_predictor, budget_growth=1.0)


class TestTradeoffCurve:
    def test_curve_has_one_point_per_budget(self, allocator, logical_plan):
        curve = allocator.tradeoff_curve(logical_plan, budgets=[1, 8, 64])
        assert [p.container_budget for p in curve] == [1, 8, 64]

    def test_curve_predictions_positive(self, allocator, logical_plan):
        for point in allocator.tradeoff_curve(logical_plan, budgets=[2, 16]):
            assert point.predicted_latency > 0
            assert point.predicted_cpu_seconds > 0
            assert point.predicted_cpu_hours == pytest.approx(
                point.predicted_cpu_seconds / 3600.0
            )

    def test_plans_respect_budget(self, allocator, logical_plan):
        for point in allocator.tradeoff_curve(logical_plan, budgets=[1, 4, 32]):
            graph = build_stage_graph(point.plan)
            widest = max(stage.partition_count for stage in graph.stages)
            assert widest <= point.container_budget

    def test_wider_budget_does_not_hurt_prediction(self, allocator, logical_plan):
        curve = allocator.tradeoff_curve(logical_plan, budgets=[1, 256])
        narrow, wide = curve
        # A 256-container plan should never be predicted slower than a
        # single-container plan of the same job (generous 10% tolerance for
        # model wobble around small absolute costs).
        assert wide.predicted_latency <= narrow.predicted_latency * 1.1

    def test_empty_budgets_rejected(self, allocator, logical_plan):
        with pytest.raises(ValidationError):
            allocator.tradeoff_curve(logical_plan, budgets=[])

    def test_bad_budget_rejected(self, allocator, logical_plan):
        with pytest.raises(ValidationError):
            allocator.tradeoff_curve(logical_plan, budgets=[0])


class TestAllocate:
    def test_generous_deadline_is_feasible(self, allocator, logical_plan):
        curve = allocator.tradeoff_curve(logical_plan, budgets=[256])
        generous = curve[0].predicted_latency * 10
        decision = allocator.allocate(logical_plan, generous, budgets=[4, 64, 256])
        assert decision.meets_deadline
        assert decision.chosen is not None

    def test_chosen_is_minimal_feasible(self, allocator, logical_plan):
        budgets = [1, 4, 16, 64, 256]
        curve = allocator.tradeoff_curve(logical_plan, budgets=budgets)
        # Pick a deadline that some but not all budgets meet, when possible.
        latencies = sorted(p.predicted_latency for p in curve)
        deadline = (latencies[0] + latencies[-1]) / 2
        decision = allocator.allocate(logical_plan, deadline, budgets=budgets)
        if decision.chosen is None:
            pytest.skip("curve too flat to split with a midpoint deadline")
        for point in decision.curve:
            if point.container_budget < decision.chosen.container_budget:
                assert point.predicted_latency > deadline

    def test_impossible_deadline(self, allocator, logical_plan):
        decision = allocator.allocate(logical_plan, 1e-3, budgets=[4, 16])
        assert not decision.meets_deadline
        assert decision.chosen is None
        assert decision.container_budget == 16  # the widest probed budget

    def test_describe_marks_choice(self, allocator, logical_plan):
        decision = allocator.allocate(logical_plan, 1e9, budgets=[4, 16])
        text = decision.describe()
        assert "<- chosen" in text
        assert "deadline" in text

    def test_describe_reports_infeasibility(self, allocator, logical_plan):
        decision = allocator.allocate(logical_plan, 1e-3, budgets=[4])
        assert "no probed budget" in decision.describe()

    def test_bad_deadline(self, allocator, logical_plan):
        with pytest.raises(ValidationError):
            allocator.allocate(logical_plan, 0.0)
