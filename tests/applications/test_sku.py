"""Tests for the machine-SKU advisor (applications.sku)."""

from __future__ import annotations

import pytest

from repro.applications.prediction import JobPerformancePredictor
from repro.applications.sku import MachineSku, SkuAdvisor, SkuEstimate
from repro.common.errors import ValidationError

STANDARD = MachineSku(name="standard", speed_factor=1.0, price_per_container_hour=0.10)
FAST = MachineSku(name="fast", speed_factor=2.0, price_per_container_hour=0.25)
SLOW_CHEAP = MachineSku(name="slow", speed_factor=0.5, price_per_container_hour=0.04)


class _ConstantPredictor:
    """Predicts the same exclusive cost for every operator."""

    def __init__(self, cost: float) -> None:
        self.cost = cost

    def predict(self, features, signatures) -> float:
        return self.cost


@pytest.fixture()
def any_plan(tiny_bundle):
    job = next(iter(tiny_bundle.test_log()))
    return tiny_bundle.runner.plans[job.job_id]


@pytest.fixture()
def advisor(tiny_bundle, tiny_predictor):
    return SkuAdvisor(tiny_predictor, tiny_bundle.fresh_estimator())


class TestMachineSku:
    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValidationError):
            MachineSku(name="bad", speed_factor=0.0, price_per_container_hour=0.1)

    def test_rejects_negative_price(self):
        with pytest.raises(ValidationError):
            MachineSku(name="bad", speed_factor=1.0, price_per_container_hour=-1.0)


class TestScalingSemantics:
    def test_reference_sku_matches_unscaled_prediction(
        self, advisor, tiny_bundle, tiny_predictor, any_plan
    ):
        baseline = JobPerformancePredictor(
            tiny_predictor, tiny_bundle.fresh_estimator()
        ).predict(any_plan)
        estimate = advisor.estimate(any_plan, STANDARD)
        assert estimate.latency_seconds == pytest.approx(baseline.latency_seconds)
        assert estimate.cpu_seconds == pytest.approx(baseline.cpu_seconds)

    def test_faster_sku_is_never_slower(self, advisor, any_plan):
        standard = advisor.estimate(any_plan, STANDARD)
        fast = advisor.estimate(any_plan, FAST)
        assert fast.latency_seconds <= standard.latency_seconds
        assert fast.cpu_seconds <= standard.cpu_seconds

    def test_startup_charge_does_not_scale(self, any_plan, tiny_bundle):
        """With constant per-op cost c, latency(speed s) must equal the
        critical path of stages priced startup + n_ops * c / s."""
        from repro.plan.stages import build_stage_graph

        cost = 10.0
        advisor = SkuAdvisor(
            _ConstantPredictor(cost),
            tiny_bundle.fresh_estimator(),
            stage_startup_seconds=2.0,
        )
        estimate = advisor.estimate(any_plan, FAST)
        graph = build_stage_graph(any_plan)
        durations = {
            stage.index: 2.0 + len(stage.operators) * cost / FAST.speed_factor
            for stage in graph.stages
        }
        finish: dict[int, float] = {}
        for stage in graph.topological_order():
            start = max((finish[u] for u in stage.upstream), default=0.0)
            finish[stage.index] = start + durations[stage.index]
        assert estimate.latency_seconds == pytest.approx(max(finish.values()))

    def test_matches_simulator_across_speed_factors(self, tiny_bundle):
        """The advisor's scaling law is the simulator's: same cluster at
        double speed halves compute time exactly (startup fixed)."""
        from repro.execution.hardware import ClusterSpec
        from repro.execution.simulator import ExecutionSimulator

        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        base_cluster = tiny_bundle.cluster
        fast_cluster = ClusterSpec(
            name=base_cluster.name,
            speed_factor=base_cluster.speed_factor * 2.0,
            noise_sigma=0.0,
            outlier_probability=0.0,
        )
        base_sim = ExecutionSimulator(
            ClusterSpec(
                name=base_cluster.name,
                speed_factor=base_cluster.speed_factor,
                noise_sigma=0.0,
                outlier_probability=0.0,
            )
        )
        fast_sim = ExecutionSimulator(fast_cluster)
        from repro.execution.simulator import STAGE_STARTUP_SECONDS
        from repro.plan.stages import build_stage_graph

        n_stages_startup = STAGE_STARTUP_SECONDS  # charged per stage
        base_latency = base_sim.expected_job_latency(plan)
        fast_latency = fast_sim.expected_job_latency(plan)
        # Compute part halves; startup part is identical.  On a chain DAG
        # latency = startup*k + work, so work_fast = work_base / 2 holds
        # stage by stage; assert the aggregate inequality bounds.
        graph = build_stage_graph(plan)
        min_startup = n_stages_startup  # at least one stage on the path
        assert fast_latency < base_latency
        assert fast_latency >= (base_latency - min_startup * len(graph.stages)) / 2.0


class TestRecommendation:
    def test_no_deadline_picks_cheapest(self, advisor, any_plan):
        recommendation = advisor.recommend(any_plan, [STANDARD, FAST, SLOW_CHEAP])
        assert recommendation.chosen is not None
        cheapest = min(recommendation.estimates, key=lambda e: e.dollar_cost)
        assert recommendation.chosen.sku.name == cheapest.sku.name

    def test_deadline_picks_cheapest_feasible(self, advisor, any_plan):
        standard = advisor.estimate(any_plan, STANDARD)
        # Deadline only the fast SKU can definitely meet.
        fast = advisor.estimate(any_plan, FAST)
        deadline = (fast.latency_seconds + standard.latency_seconds) / 2
        recommendation = advisor.recommend(
            any_plan, [STANDARD, FAST, SLOW_CHEAP], deadline_seconds=deadline
        )
        if recommendation.chosen is None:
            pytest.skip("degenerate plan: even fast SKU misses the midpoint")
        assert recommendation.chosen.latency_seconds <= deadline
        for estimate in recommendation.estimates:
            if estimate.dollar_cost < recommendation.chosen.dollar_cost:
                assert estimate.latency_seconds > deadline

    def test_impossible_deadline_yields_none(self, advisor, any_plan):
        recommendation = advisor.recommend(
            any_plan, [STANDARD, FAST], deadline_seconds=1e-3
        )
        assert recommendation.chosen is None
        assert "no SKU meets" in recommendation.describe()

    def test_pareto_frontier_is_nondominated_and_sorted(self, advisor, any_plan):
        recommendation = advisor.recommend(any_plan, [STANDARD, FAST, SLOW_CHEAP])
        frontier = recommendation.pareto_frontier
        assert frontier
        latencies = [e.latency_seconds for e in frontier]
        assert latencies == sorted(latencies)
        for a in frontier:
            assert not any(b.dominates(a) for b in recommendation.estimates)

    def test_describe_marks_choice(self, advisor, any_plan):
        recommendation = advisor.recommend(any_plan, [STANDARD, FAST])
        assert "<- chosen" in recommendation.describe()

    def test_empty_skus_rejected(self, advisor, any_plan):
        with pytest.raises(ValidationError):
            advisor.recommend(any_plan, [])

    def test_bad_deadline_rejected(self, advisor, any_plan):
        with pytest.raises(ValidationError):
            advisor.recommend(any_plan, [STANDARD], deadline_seconds=0.0)

    def test_bad_reference_speed_rejected(self, tiny_predictor):
        with pytest.raises(ValidationError):
            SkuAdvisor(tiny_predictor, reference_speed=0.0)


class TestDominance:
    def test_strict_dominance(self, advisor, any_plan):
        fast = advisor.estimate(any_plan, FAST)
        # A SKU that is both faster and cheaper dominates.
        better = SkuEstimate(
            sku=MachineSku(name="better", speed_factor=4.0, price_per_container_hour=0.01),
            prediction=advisor.estimate(
                any_plan,
                MachineSku(name="better", speed_factor=4.0, price_per_container_hour=0.01),
            ).prediction,
        )
        assert better.dominates(fast)
        assert not fast.dominates(better)

    def test_equal_estimates_do_not_dominate(self, advisor, any_plan):
        one = advisor.estimate(any_plan, STANDARD)
        two = advisor.estimate(any_plan, STANDARD)
        assert not one.dominates(two)
        assert not two.dominates(one)


class TestParetoProperties:
    """Pure-logic hypothesis tests on synthetic (latency, price) sets."""

    @staticmethod
    def _estimate(name: str, latency: float, cpu: float, price: float) -> SkuEstimate:
        from repro.applications.prediction import JobPrediction

        return SkuEstimate(
            sku=MachineSku(name=name, speed_factor=1.0, price_per_container_hour=price),
            prediction=JobPrediction(
                stages=(), latency_seconds=latency, cpu_seconds=cpu
            ),
        )

    def test_frontier_properties(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.applications.sku import SkuRecommendation

        values = st.floats(min_value=0.1, max_value=1e4, allow_nan=False)

        @given(
            points=st.lists(
                st.tuples(values, values, values), min_size=1, max_size=12
            )
        )
        @settings(max_examples=100, deadline=None)
        def run(points):
            estimates = tuple(
                self._estimate(f"sku{i}", lat, cpu, price)
                for i, (lat, cpu, price) in enumerate(points)
            )
            recommendation = SkuRecommendation(
                deadline_seconds=None, chosen=None, estimates=estimates
            )
            frontier = recommendation.pareto_frontier
            assert frontier
            # Sorted by latency, and no frontier member dominated by anyone.
            latencies = [e.latency_seconds for e in frontier]
            assert latencies == sorted(latencies)
            for member in frontier:
                assert not any(other.dominates(member) for other in estimates)
            # Everyone off the frontier is dominated by someone.
            off = [e for e in estimates if e not in frontier]
            for loser in off:
                assert any(winner.dominates(loser) for winner in estimates)

        run()
