"""Tests for task-runtime estimation and scheduling (applications.scheduling)."""

from __future__ import annotations

import pytest

from repro.applications.scheduling import (
    ClusterScheduler,
    SchedulingStudy,
    TaskSpec,
    job_to_tasks,
)
from repro.common.errors import ValidationError
from repro.core.cost_model import CleoCostModel
from repro.cost.default_model import DefaultCostModel
from repro.plan.stages import build_stage_graph


def task(
    job: str,
    stage: int,
    containers: int = 1,
    estimated: float = 10.0,
    actual: float = 10.0,
    upstream: tuple[int, ...] = (),
) -> TaskSpec:
    return TaskSpec(
        job_id=job,
        stage_index=stage,
        containers=containers,
        estimated_seconds=estimated,
        actual_seconds=actual,
        upstream=upstream,
    )


class TestTaskSpec:
    def test_rejects_zero_containers(self):
        with pytest.raises(ValidationError):
            task("j", 0, containers=0)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValidationError):
            task("j", 0, estimated=-1.0)

    def test_key(self):
        assert task("j", 3).key == ("j", 3)


class TestJobToTasks:
    def test_one_task_per_stage(self, tiny_bundle, tiny_predictor):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        tasks = job_to_tasks(
            plan,
            job.job_id,
            CleoCostModel(tiny_predictor),
            tiny_bundle.fresh_estimator(),
            tiny_bundle.runner.simulator,
        )
        assert len(tasks) == len(build_stage_graph(plan))

    def test_upstream_indices_are_valid_stages(self, tiny_bundle, tiny_predictor):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        tasks = job_to_tasks(
            plan,
            job.job_id,
            CleoCostModel(tiny_predictor),
            tiny_bundle.fresh_estimator(),
            tiny_bundle.runner.simulator,
        )
        indices = {t.stage_index for t in tasks}
        for t in tasks:
            assert set(t.upstream) <= indices
            assert t.stage_index not in t.upstream

    def test_runtimes_include_startup(self, tiny_bundle, tiny_predictor):
        from repro.execution.simulator import STAGE_STARTUP_SECONDS

        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        tasks = job_to_tasks(
            plan,
            job.job_id,
            CleoCostModel(tiny_predictor),
            tiny_bundle.fresh_estimator(),
            tiny_bundle.runner.simulator,
        )
        for t in tasks:
            assert t.estimated_seconds >= STAGE_STARTUP_SECONDS
            assert t.actual_seconds >= STAGE_STARTUP_SECONDS


class TestClusterScheduler:
    def test_chain_runs_sequentially(self):
        jobs = {
            "j": [
                task("j", 0, actual=5.0),
                task("j", 1, actual=7.0, upstream=(0,)),
                task("j", 2, actual=3.0, upstream=(1,)),
            ]
        }
        outcome = ClusterScheduler(total_containers=8).run(jobs)
        assert outcome.makespan == pytest.approx(15.0)
        assert outcome.job_completion["j"] == pytest.approx(15.0)

    def test_independent_tasks_run_in_parallel(self):
        jobs = {
            "a": [task("a", 0, actual=10.0)],
            "b": [task("b", 0, actual=6.0)],
        }
        outcome = ClusterScheduler(total_containers=2).run(jobs)
        assert outcome.makespan == pytest.approx(10.0)
        assert outcome.job_completion["b"] == pytest.approx(6.0)

    def test_contention_serializes(self):
        jobs = {
            "a": [task("a", 0, actual=10.0)],
            "b": [task("b", 0, actual=6.0)],
        }
        outcome = ClusterScheduler(total_containers=1).run(jobs)
        assert outcome.makespan == pytest.approx(16.0)

    def test_lpt_starts_longest_first(self):
        jobs = {
            "short": [task("short", 0, estimated=2.0, actual=2.0)],
            "long": [task("long", 0, estimated=20.0, actual=20.0)],
        }
        outcome = ClusterScheduler(total_containers=1, policy="lpt").run(jobs)
        # Long first: short finishes at 22; LPT sacrifices mean JCT.
        assert outcome.job_completion["short"] == pytest.approx(22.0)

    def test_sjf_starts_shortest_job_first(self):
        jobs = {
            "short": [task("short", 0, estimated=2.0, actual=2.0)],
            "long": [task("long", 0, estimated=20.0, actual=20.0)],
        }
        outcome = ClusterScheduler(total_containers=1, policy="sjf").run(jobs)
        assert outcome.job_completion["short"] == pytest.approx(2.0)

    def test_fifo_respects_submission_order(self):
        jobs = {
            "first": [task("first", 0, estimated=1.0, actual=20.0)],
            "second": [task("second", 0, estimated=100.0, actual=2.0)],
        }
        outcome = ClusterScheduler(total_containers=1, policy="fifo").run(jobs)
        assert outcome.job_completion["first"] == pytest.approx(20.0)
        assert outcome.job_completion["second"] == pytest.approx(22.0)

    def test_misleading_estimates_change_the_schedule(self):
        # SJF trusts estimates; lying estimates flip the order.
        honest = {
            "short": [task("short", 0, estimated=2.0, actual=2.0)],
            "long": [task("long", 0, estimated=20.0, actual=20.0)],
        }
        lying = {
            "short": [task("short", 0, estimated=30.0, actual=2.0)],
            "long": [task("long", 0, estimated=1.0, actual=20.0)],
        }
        scheduler = ClusterScheduler(total_containers=1, policy="sjf")
        good = scheduler.run(honest)
        bad = scheduler.run(lying)
        assert good.mean_job_completion < bad.mean_job_completion

    def test_gang_larger_than_pool_is_clamped(self):
        jobs = {"j": [task("j", 0, containers=100, actual=5.0)]}
        outcome = ClusterScheduler(total_containers=4).run(jobs)
        assert outcome.makespan == pytest.approx(5.0)
        assert outcome.utilization <= 1.0

    def test_busy_seconds_conservation(self):
        jobs = {
            "a": [task("a", 0, containers=2, actual=10.0)],
            "b": [task("b", 0, containers=1, actual=4.0)],
        }
        outcome = ClusterScheduler(total_containers=4).run(jobs)
        assert outcome.container_busy_seconds == pytest.approx(2 * 10.0 + 1 * 4.0)
        assert 0.0 <= outcome.utilization <= 1.0

    def test_duplicate_task_keys_rejected(self):
        jobs = {"j": [task("j", 0), task("j", 0)]}
        with pytest.raises(ValidationError):
            ClusterScheduler(total_containers=1).run(jobs)

    def test_dangling_upstream_rejected(self):
        jobs = {"j": [task("j", 0, upstream=(99,))]}
        with pytest.raises(ValidationError):
            ClusterScheduler(total_containers=1).run(jobs)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValidationError):
            ClusterScheduler(total_containers=1, policy="random")

    def test_bad_pool_rejected(self):
        with pytest.raises(ValidationError):
            ClusterScheduler(total_containers=0)

    def test_empty_jobs(self):
        outcome = ClusterScheduler(total_containers=1).run({})
        assert outcome.makespan == 0.0
        assert outcome.job_completion == {}


class TestSchedulingStudy:
    @pytest.fixture()
    def study_inputs(self, tiny_bundle):
        jobs = list(tiny_bundle.test_log())[:6]
        plans = {job.job_id: tiny_bundle.runner.plans[job.job_id] for job in jobs}
        return plans

    def test_busy_seconds_identical_across_estimators(
        self, tiny_bundle, tiny_predictor, study_inputs
    ):
        study = SchedulingStudy(
            simulator=tiny_bundle.runner.simulator,
            estimator=tiny_bundle.fresh_estimator(),
            total_containers=64,
        )
        results = study.run(
            study_inputs,
            {
                "learned": CleoCostModel(tiny_predictor),
                "default": DefaultCostModel(),
            },
        )
        # Actual runtimes and gang sizes do not depend on the estimator:
        # only the ordering decisions differ.
        busy = {name: out.container_busy_seconds for name, out in results.items()}
        assert busy["learned"] == pytest.approx(busy["default"], rel=1e-9)

    def test_oracle_runs(self, tiny_bundle, tiny_predictor, study_inputs):
        study = SchedulingStudy(
            simulator=tiny_bundle.runner.simulator,
            estimator=tiny_bundle.fresh_estimator(),
            total_containers=64,
        )
        oracle = study.oracle(study_inputs)
        assert oracle.makespan > 0
        assert set(oracle.job_completion) == set(study_inputs)

    def test_empty_plans_rejected(self, tiny_bundle):
        study = SchedulingStudy(
            simulator=tiny_bundle.runner.simulator,
            estimator=tiny_bundle.fresh_estimator(),
            total_containers=4,
        )
        with pytest.raises(ValidationError):
            study.run({}, {})
