"""Tests for query progress estimation (applications.progress)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.prediction import (
    JobPerformancePredictor,
    JobPrediction,
    StageEstimate,
)
from repro.applications.progress import (
    ProgressEstimator,
    evaluate_stage_count_baseline,
    stage_count_progress,
)
from repro.common.errors import ValidationError
from repro.execution.trace import JobTrace, StageTrace, trace_job


def make_stage_estimate(index: int, seconds: float, start: float = 0.0) -> StageEstimate:
    return StageEstimate(
        index=index,
        partition_count=1,
        operator_types=("Extract",),
        predicted_seconds=seconds,
        predicted_cpu_seconds=seconds,
        start_seconds=start,
        finish_seconds=start + seconds,
        on_critical_path=True,
    )


def make_stage_trace(index: int, start: float, finish: float) -> StageTrace:
    return StageTrace(
        index=index,
        partition_count=1,
        operator_types=("Extract",),
        start_seconds=start,
        finish_seconds=finish,
        on_critical_path=True,
    )


@pytest.fixture()
def skewed_prediction() -> JobPrediction:
    """Two sequential stages: 90s of predicted work then 10s."""
    stages = (
        make_stage_estimate(0, 90.0, start=0.0),
        make_stage_estimate(1, 10.0, start=90.0),
    )
    return JobPrediction(stages=stages, latency_seconds=100.0, cpu_seconds=100.0)


@pytest.fixture()
def matching_trace() -> JobTrace:
    """The corresponding actual execution: 90s then 10s."""
    stages = (
        make_stage_trace(0, 0.0, 90.0),
        make_stage_trace(1, 90.0, 100.0),
    )
    return JobTrace(stages=stages, total_latency=100.0)


class TestProgressEstimator:
    def test_zero_at_start_one_at_end(self, skewed_prediction, matching_trace):
        estimator = ProgressEstimator(skewed_prediction)
        assert estimator.progress_at(matching_trace, 0.0) == pytest.approx(0.0)
        assert estimator.progress_at(matching_trace, 100.0) == pytest.approx(1.0)

    def test_monotone_in_wall_time(self, skewed_prediction, matching_trace):
        estimator = ProgressEstimator(skewed_prediction)
        times = np.linspace(0.0, 100.0, 21)
        values = [estimator.progress_at(matching_trace, t) for t in times]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_running_stage_prorated(self, skewed_prediction, matching_trace):
        estimator = ProgressEstimator(skewed_prediction)
        # Halfway through stage 0: 45 of 90 predicted seconds done.
        assert estimator.progress_at(matching_trace, 45.0) == pytest.approx(0.45)

    def test_perfect_prediction_tracks_diagonal(self, skewed_prediction, matching_trace):
        report = ProgressEstimator(skewed_prediction).evaluate(matching_trace)
        assert report.mean_abs_error < 1e-9
        assert report.max_abs_error < 1e-9

    def test_beats_stage_count_baseline_on_skewed_stages(
        self, skewed_prediction, matching_trace
    ):
        weighted = ProgressEstimator(skewed_prediction).evaluate(matching_trace)
        baseline = evaluate_stage_count_baseline(matching_trace)
        # Stage counting claims 0% until t=90 then jumps to 50%; the
        # work-weighted indicator follows wall-clock reality.
        assert weighted.mean_abs_error < baseline.mean_abs_error

    def test_remaining_seconds_decreases(self, skewed_prediction, matching_trace):
        estimator = ProgressEstimator(skewed_prediction)
        early = estimator.remaining_seconds(matching_trace, 10.0)
        late = estimator.remaining_seconds(matching_trace, 80.0)
        assert early > late >= 0.0

    def test_curve_shape(self, skewed_prediction, matching_trace):
        curve = ProgressEstimator(skewed_prediction).curve(matching_trace, points=11)
        assert len(curve) == 11
        fractions = [f for f, _ in curve]
        assert fractions[0] == pytest.approx(0.0)
        assert fractions[-1] == pytest.approx(1.0)

    def test_unknown_stage_rejected(self, skewed_prediction):
        estimator = ProgressEstimator(skewed_prediction)
        alien = JobTrace(
            stages=(make_stage_trace(7, 0.0, 10.0),), total_latency=10.0
        )
        with pytest.raises(ValidationError):
            estimator.progress_at(alien, 5.0)

    def test_empty_prediction_rejected(self):
        empty = JobPrediction(stages=(), latency_seconds=0.0, cpu_seconds=0.0)
        with pytest.raises(ValidationError):
            ProgressEstimator(empty)

    def test_too_few_curve_points_rejected(self, skewed_prediction, matching_trace):
        with pytest.raises(ValidationError):
            ProgressEstimator(skewed_prediction).curve(matching_trace, points=1)


class TestStageCountBaseline:
    def test_counts_finished_stages(self, matching_trace):
        assert stage_count_progress(matching_trace, 0.0) == pytest.approx(0.0)
        assert stage_count_progress(matching_trace, 95.0) == pytest.approx(0.5)
        assert stage_count_progress(matching_trace, 100.0) == pytest.approx(1.0)

    def test_empty_trace_is_complete(self):
        assert stage_count_progress(JobTrace(stages=(), total_latency=0.0), 0.0) == 1.0

    def test_baseline_report_points_validated(self, matching_trace):
        with pytest.raises(ValidationError):
            evaluate_stage_count_baseline(matching_trace, points=1)


class TestEndToEndProgress:
    def test_on_simulated_job(self, tiny_bundle, tiny_predictor):
        job = next(iter(tiny_bundle.test_log()))
        plan = tiny_bundle.runner.plans[job.job_id]
        perf = JobPerformancePredictor(tiny_predictor, tiny_bundle.fresh_estimator())
        prediction = perf.predict(plan)
        trace = trace_job(tiny_bundle.runner.simulator, plan)
        estimator = ProgressEstimator(prediction)
        report = estimator.evaluate(trace)
        assert 0.0 <= report.mean_abs_error <= report.max_abs_error <= 1.0
        # A trained predictor should stay meaningfully close to the ideal
        # diagonal on a job from its own workload.
        assert report.mean_abs_error < 0.25
