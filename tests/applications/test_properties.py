"""Property-based tests (hypothesis) for the applications package."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.prediction import JobPrediction, StageEstimate
from repro.applications.progress import ProgressEstimator, stage_count_progress
from repro.applications.scheduling import ClusterScheduler, TaskSpec
from repro.applications.whatif import scale_tables, subtree_key
from repro.execution.trace import JobTrace, StageTrace
from repro.plan.builder import PlanBuilder
from tests.conftest import make_test_catalog

# ----------------------------------------------------------------------- #
# Scheduler conservation properties over random task systems
# ----------------------------------------------------------------------- #

_durations = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)


@st.composite
def task_systems(draw) -> dict[str, list[TaskSpec]]:
    """Random jobs whose stages form chains with random branch joins.

    Upstream edges only point to lower stage indices, so the system is
    always acyclic and schedulable.
    """
    jobs: dict[str, list[TaskSpec]] = {}
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    for j in range(n_jobs):
        job_id = f"job{j}"
        n_stages = draw(st.integers(min_value=1, max_value=5))
        tasks = []
        for index in range(n_stages):
            upstream: tuple[int, ...] = ()
            if index > 0:
                pool = list(range(index))
                upstream = tuple(
                    sorted(
                        draw(
                            st.sets(
                                st.sampled_from(pool),
                                min_size=0,
                                max_size=min(2, len(pool)),
                            )
                        )
                    )
                )
            tasks.append(
                TaskSpec(
                    job_id=job_id,
                    stage_index=index,
                    containers=draw(st.integers(min_value=1, max_value=6)),
                    estimated_seconds=draw(_durations),
                    actual_seconds=draw(_durations),
                    upstream=upstream,
                )
            )
        jobs[job_id] = tasks
    return jobs


class TestSchedulerProperties:
    @given(jobs=task_systems(), containers=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_bounds(self, jobs, containers):
        outcome = ClusterScheduler(total_containers=containers).run(jobs)
        expected_busy = sum(
            min(t.containers, containers) * t.actual_seconds
            for tasks in jobs.values()
            for t in tasks
        )
        assert outcome.container_busy_seconds == pytest.approx(expected_busy)
        assert 0.0 <= outcome.utilization <= 1.0
        # Makespan is at least the pool-capacity bound and at least any
        # single task's duration.
        longest = max(t.actual_seconds for tasks in jobs.values() for t in tasks)
        assert outcome.makespan >= longest - 1e-9
        assert outcome.makespan >= expected_busy / containers - 1e-9
        assert set(outcome.job_completion) == set(jobs)

    @given(jobs=task_systems())
    @settings(max_examples=25, deadline=None)
    def test_policies_agree_on_total_work(self, jobs):
        outcomes = [
            ClusterScheduler(total_containers=4, policy=policy).run(jobs)
            for policy in ClusterScheduler.POLICIES
        ]
        busies = {round(o.container_busy_seconds, 6) for o in outcomes}
        assert len(busies) == 1

    @given(jobs=task_systems())
    @settings(max_examples=25, deadline=None)
    def test_infinite_pool_reaches_critical_path(self, jobs):
        """With unbounded containers, every job finishes at its chain length."""
        outcome = ClusterScheduler(total_containers=10_000).run(jobs)
        for job_id, tasks in jobs.items():
            finish: dict[int, float] = {}
            for task in tasks:  # stage_index ascending by construction
                start = max((finish[u] for u in task.upstream), default=0.0)
                finish[task.stage_index] = start + task.actual_seconds
            assert outcome.job_completion[job_id] == pytest.approx(max(finish.values()))


# ----------------------------------------------------------------------- #
# Progress estimation properties over random stage timelines
# ----------------------------------------------------------------------- #


@st.composite
def traced_predictions(draw) -> tuple[JobPrediction, JobTrace]:
    """A random sequential stage timeline plus predicted weights."""
    n = draw(st.integers(min_value=1, max_value=6))
    starts = [0.0]
    actual = [draw(_durations) for _ in range(n)]
    for duration in actual[:-1]:
        starts.append(starts[-1] + duration)
    predicted = [draw(_durations) for _ in range(n)]
    stages = tuple(
        StageEstimate(
            index=i,
            partition_count=1,
            operator_types=("Extract",),
            predicted_seconds=predicted[i],
            predicted_cpu_seconds=predicted[i],
            start_seconds=0.0,
            finish_seconds=predicted[i],
            on_critical_path=True,
        )
        for i in range(n)
    )
    prediction = JobPrediction(
        stages=stages, latency_seconds=sum(predicted), cpu_seconds=sum(predicted)
    )
    trace = JobTrace(
        stages=tuple(
            StageTrace(
                index=i,
                partition_count=1,
                operator_types=("Extract",),
                start_seconds=starts[i],
                finish_seconds=starts[i] + actual[i],
                on_critical_path=True,
            )
            for i in range(n)
        ),
        total_latency=starts[-1] + actual[-1],
    )
    return prediction, trace


class TestProgressProperties:
    @given(data=traced_predictions())
    @settings(max_examples=50, deadline=None)
    def test_progress_is_monotone_and_bounded(self, data):
        prediction, trace = data
        estimator = ProgressEstimator(prediction)
        total = trace.total_latency
        previous = -1.0
        for k in range(11):
            value = estimator.progress_at(trace, total * k / 10)
            assert 0.0 <= value <= 1.0
            assert value >= previous - 1e-12
            previous = value
        assert estimator.progress_at(trace, total) == pytest.approx(1.0)

    @given(data=traced_predictions())
    @settings(max_examples=50, deadline=None)
    def test_stage_count_progress_bounded(self, data):
        _, trace = data
        for k in range(11):
            value = stage_count_progress(trace, trace.total_latency * k / 10)
            assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------- #
# What-if transform properties
# ----------------------------------------------------------------------- #

_factors = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestScaleTablesProperties:
    @given(first=_factors, second=_factors)
    @settings(max_examples=50, deadline=None)
    def test_scaling_composes(self, first, second):
        builder = PlanBuilder(make_test_catalog())
        plan = builder.output(
            builder.filter(builder.scan("events_2024_01_01"), "ts", 0.3, tag="p:f"),
            name="p",
        )
        table = "events_2024_01_01"
        stepwise = scale_tables(scale_tables(plan, {table: first}), {table: second})
        direct = scale_tables(plan, {table: first * second})
        for node_a, node_b in zip(stepwise.walk(), direct.walk()):
            assert node_a.true_card == pytest.approx(node_b.true_card, rel=1e-9)

    @given(factor=_factors)
    @settings(max_examples=50, deadline=None)
    def test_scaling_preserves_structure_and_keys(self, factor):
        builder = PlanBuilder(make_test_catalog())
        plan = builder.output(
            builder.aggregate(
                builder.join(
                    builder.scan("events_2024_01_01"),
                    builder.scan("users_2024_01_01"),
                    keys=("user_id", "user_id"),
                    fanout=0.4,
                    tag="p:j",
                ),
                keys=("country",),
                group_count=50,
                tag="p:a",
            ),
            name="p",
        )
        scaled = scale_tables(plan, {"events_2024_01_01": factor})
        assert scaled.node_count == plan.node_count
        for before, after in zip(plan.walk(), scaled.walk()):
            assert before.op_type is after.op_type
            assert before.template_tag == after.template_tag
            assert subtree_key(before) == subtree_key(after)
            assert after.true_card >= 0
            assert math.isfinite(after.true_card)
