"""Tests for job-level performance prediction (applications.prediction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.prediction import (
    JobPerformancePredictor,
    PredictionInterval,
)
from repro.common.errors import ValidationError
from repro.common.stats import pearson
from repro.plan.stages import build_stage_graph


@pytest.fixture()
def perf(tiny_bundle, tiny_predictor):
    return JobPerformancePredictor(tiny_predictor, tiny_bundle.fresh_estimator())


@pytest.fixture()
def any_plan(tiny_bundle):
    job = next(iter(tiny_bundle.test_log()))
    return tiny_bundle.runner.plans[job.job_id]


class TestJobPrediction:
    def test_prediction_is_positive(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        assert prediction.latency_seconds > 0
        assert prediction.cpu_seconds > 0

    def test_stage_count_matches_stage_graph(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        assert len(prediction.stages) == len(build_stage_graph(any_plan))

    def test_latency_bounded_by_stage_durations(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        longest = max(s.predicted_seconds for s in prediction.stages)
        total = sum(s.predicted_seconds for s in prediction.stages)
        assert longest <= prediction.latency_seconds <= total + 1e-9

    def test_critical_path_is_nonempty_and_flagged(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        critical = prediction.critical_path
        assert critical
        assert all(s.on_critical_path for s in critical)
        assert prediction.bottleneck() in critical

    def test_critical_path_durations_sum_to_latency(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        total = sum(s.predicted_seconds for s in prediction.critical_path)
        assert total == pytest.approx(prediction.latency_seconds, rel=1e-9)

    def test_cpu_charges_partitions(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        for stage in prediction.stages:
            operators_cost = stage.predicted_seconds - perf.stage_startup_seconds
            assert stage.predicted_cpu_seconds == pytest.approx(
                operators_cost * stage.partition_count, rel=1e-9
            )

    def test_timeline_respects_dependencies(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        graph = build_stage_graph(any_plan)
        finish = {s.index: s.finish_seconds for s in prediction.stages}
        start = {s.index: s.start_seconds for s in prediction.stages}
        for stage in graph.stages:
            for upstream in stage.upstream:
                assert start[stage.index] >= finish[upstream] - 1e-9

    def test_describe_mentions_every_stage(self, perf, any_plan):
        prediction = perf.predict(any_plan)
        text = prediction.describe()
        assert "predicted latency" in text
        assert text.count("stage ") == len(prediction.stages)

    def test_deterministic(self, perf, any_plan):
        first = perf.predict(any_plan)
        second = perf.predict(any_plan)
        assert first.latency_seconds == second.latency_seconds
        assert first.cpu_seconds == second.cpu_seconds


class TestPredictionQuality:
    def test_predictions_track_actual_job_latency(self, perf, tiny_bundle):
        pairs = perf.validate_jobs(tiny_bundle.runner.plans, tiny_bundle.test_log())
        assert len(pairs) > 5
        predicted = np.array([p for p, _ in pairs.values()])
        actual = np.array([a for _, a in pairs.values()])
        assert pearson(predicted, actual) > 0.5

    def test_validate_jobs_skips_unknown_jobs(self, perf, tiny_bundle, any_plan):
        pairs = perf.validate_jobs({"not-a-job": any_plan}, tiny_bundle.test_log())
        assert pairs == {}


class TestCalibration:
    def test_calibration_report_shape(self, perf, tiny_bundle):
        report = perf.calibrate(tiny_bundle.test_log())
        assert report.n_operators > 100
        quantiles = report.log_ratio_quantiles
        assert quantiles[0.05] <= quantiles[0.25] <= quantiles[0.5]
        assert quantiles[0.5] <= quantiles[0.75] <= quantiles[0.95]
        assert report.median_ratio > 0

    def test_interval_brackets_point(self, perf, tiny_bundle, any_plan):
        perf.calibrate(tiny_bundle.test_log())
        interval = perf.predict_interval(any_plan, coverage=0.9)
        assert interval.low <= interval.point <= interval.high
        assert interval.width_factor >= 1.0

    def test_wider_coverage_means_wider_interval(self, perf, tiny_bundle, any_plan):
        perf.calibrate(tiny_bundle.test_log())
        narrow = perf.predict_interval(any_plan, coverage=0.5)
        wide = perf.predict_interval(any_plan, coverage=0.95)
        assert wide.low <= narrow.low
        assert wide.high >= narrow.high

    def test_job_calibrated_intervals_cover_actual_latencies(self, perf, tiny_bundle):
        # Calibration must be held out from training (days 1-2 are
        # in-sample for the tiny predictor), so split day 3 in half:
        # even-indexed jobs calibrate, odd-indexed jobs evaluate.
        from repro.execution.runtime_log import RunLog

        day3 = list(tiny_bundle.test_log())
        calibration_log = RunLog()
        calibration_log.extend(day3[::2])
        evaluation = day3[1::2]
        perf.calibrate_jobs(tiny_bundle.runner.plans, calibration_log)
        covered = sum(
            perf.predict_interval(
                tiny_bundle.runner.plans[job.job_id], coverage=0.9
            ).contains(job.latency_seconds)
            for job in evaluation
        )
        # Exchangeable calibration/evaluation halves: expect roughly the
        # nominal 90%; demand a comfortable supermajority.
        assert covered / len(evaluation) > 0.7

    def test_calibrate_jobs_requires_overlap(self, perf, tiny_bundle):
        with pytest.raises(ValidationError):
            perf.calibrate_jobs({}, tiny_bundle.test_log())

    def test_interval_without_calibration_raises(self, perf, any_plan):
        with pytest.raises(ValidationError):
            perf.predict_interval(any_plan)

    def test_bad_coverage_raises(self, perf, tiny_bundle, any_plan):
        perf.calibrate(tiny_bundle.test_log())
        with pytest.raises(ValidationError):
            perf.predict_interval(any_plan, coverage=1.5)

    def test_is_calibrated_flag(self, perf, tiny_bundle):
        assert not perf.is_calibrated
        perf.calibrate(tiny_bundle.test_log())
        assert perf.is_calibrated


class TestPredictionInterval:
    def test_validates_ordering(self):
        with pytest.raises(ValidationError):
            PredictionInterval(point=5.0, low=6.0, high=7.0, coverage=0.9)

    def test_validates_coverage(self):
        with pytest.raises(ValidationError):
            PredictionInterval(point=5.0, low=4.0, high=6.0, coverage=0.0)

    def test_contains(self):
        interval = PredictionInterval(point=5.0, low=4.0, high=6.0, coverage=0.9)
        assert interval.contains(4.5)
        assert not interval.contains(7.0)
