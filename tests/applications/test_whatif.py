"""Tests for what-if analysis (applications.whatif)."""

from __future__ import annotations

import pytest

from repro.applications.whatif import (
    WhatIfAnalyzer,
    find_materialization_candidates,
    replace_subtree,
    scale_tables,
    subtree_key,
)
from repro.common.errors import ValidationError
from repro.plan.builder import PlanBuilder
from repro.plan.logical import LogicalOpType
from tests.conftest import make_test_catalog


@pytest.fixture()
def builder():
    return PlanBuilder(make_test_catalog())


@pytest.fixture()
def shared_fragment(builder):
    """The subexpression two jobs share: scan -> filter."""
    return builder.filter(
        builder.scan("events_2024_01_01"), "ts", 0.2, tag="wi:shared_filter"
    )


@pytest.fixture()
def workload(builder, shared_fragment):
    """Two jobs sharing a fragment, one unrelated job."""
    job_a = builder.output(
        builder.aggregate(shared_fragment, keys=("user_id",), group_count=5000, tag="wi:a"),
        name="job_a",
    )
    job_b = builder.output(
        builder.join(
            shared_fragment,
            builder.scan("users_2024_01_01"),
            keys=("user_id", "user_id"),
            fanout=0.3,
            tag="wi:b",
        ),
        name="job_b",
    )
    job_c = builder.output(builder.scan("users_2024_01_01"), name="job_c")
    return {"a": job_a, "b": job_b, "c": job_c}


class TestSubtreeKey:
    def test_same_template_same_key(self, builder):
        one = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.2, tag="k:f")
        two = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.7, tag="k:f")
        # Different selectivity (parameters change across recurrences) but
        # identical template structure.
        assert subtree_key(one) == subtree_key(two)

    def test_different_structure_different_key(self, builder):
        flat = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.2, tag="k:f")
        nested = builder.filter(flat, "ts", 0.2, tag="k:f")
        assert subtree_key(flat) != subtree_key(nested)

    def test_child_order_matters(self, builder):
        left = builder.scan("events_2024_01_01")
        right = builder.scan("users_2024_01_01")
        ab = builder.join(left, right, keys=("user_id", "user_id"), tag="k:j")
        ba = builder.join(right, left, keys=("user_id", "user_id"), tag="k:j")
        assert subtree_key(ab) != subtree_key(ba)


class TestFindCandidates:
    def test_shared_fragment_is_found(self, workload, shared_fragment):
        candidates = find_materialization_candidates(workload)
        keys = {c.key for c in candidates}
        assert subtree_key(shared_fragment) in keys

    def test_candidate_records_both_jobs(self, workload, shared_fragment):
        candidates = find_materialization_candidates(workload)
        target = next(c for c in candidates if c.key == subtree_key(shared_fragment))
        assert target.job_ids == ("a", "b")
        assert target.occurrences == 2
        assert target.node_count == 2

    def test_unique_subtrees_are_not_candidates(self, workload):
        candidates = find_materialization_candidates(workload)
        # Job c's lone scan fragment appears once and is below min_nodes.
        assert all(c.occurrences >= 2 for c in candidates)

    def test_min_nodes_filters_scans(self, workload):
        # Both jobs scan events via the shared fragment; with min_nodes=1
        # the bare scan (1 node) becomes a candidate too.
        with_scans = find_materialization_candidates(workload, min_nodes=1)
        without = find_materialization_candidates(workload, min_nodes=2)
        assert len(with_scans) > len(without)

    def test_sorted_most_frequent_first(self, workload):
        candidates = find_materialization_candidates(workload, min_nodes=1)
        counts = [c.occurrences for c in candidates]
        assert counts == sorted(counts, reverse=True)

    def test_describe(self, workload):
        candidate = find_materialization_candidates(workload)[0]
        assert "occurrences" in candidate.describe()

    def test_min_occurrences_validated(self, workload):
        with pytest.raises(ValidationError):
            find_materialization_candidates(workload, min_occurrences=1)


class TestReplaceSubtree:
    def test_replacement_preserves_statistics(self, workload, shared_fragment):
        key = subtree_key(shared_fragment)
        rewritten = replace_subtree(
            workload["a"], lambda n: subtree_key(n) == key, "mv_shared"
        )
        gets = [n for n in rewritten.walk() if n.op_type is LogicalOpType.GET]
        view = next(n for n in gets if n.table == "mv_shared")
        assert view.true_card == pytest.approx(shared_fragment.true_card)
        assert view.row_bytes == pytest.approx(shared_fragment.row_bytes)

    def test_replacement_shrinks_plan(self, workload, shared_fragment):
        key = subtree_key(shared_fragment)
        rewritten = replace_subtree(
            workload["b"], lambda n: subtree_key(n) == key, "mv_shared"
        )
        assert rewritten.node_count < workload["b"].node_count

    def test_root_cardinality_unchanged(self, workload, shared_fragment):
        key = subtree_key(shared_fragment)
        rewritten = replace_subtree(
            workload["a"], lambda n: subtree_key(n) == key, "mv_shared"
        )
        assert rewritten.true_card == pytest.approx(workload["a"].true_card)

    def test_no_match_raises(self, workload):
        with pytest.raises(ValidationError):
            replace_subtree(workload["c"], lambda n: False, "mv_nothing")

    def test_outermost_match_wins(self, builder):
        inner = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.5, tag="o:f")
        outer = builder.filter(inner, "value", 0.5, tag="o:g")
        plan = builder.output(outer, name="o")
        rewritten = replace_subtree(
            plan, lambda n: n.op_type is LogicalOpType.FILTER, "mv_outer"
        )
        # The outer filter matched first; the inner one is gone with it.
        filters = [n for n in rewritten.walk() if n.op_type is LogicalOpType.FILTER]
        assert not filters
        assert rewritten.node_count == 2  # Get + Output


class TestScaleTables:
    def test_get_scaled(self, builder):
        plan = builder.scan("events_2024_01_01")
        scaled = scale_tables(plan, {"events_2024_01_01": 2.0})
        assert scaled.true_card == pytest.approx(plan.true_card * 2.0)

    def test_filter_follows_selectivity(self, builder):
        plan = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.25, tag="s:f")
        scaled = scale_tables(plan, {"events_2024_01_01": 4.0})
        assert scaled.true_card == pytest.approx(plan.true_card * 4.0)

    def test_aggregate_capped_by_group_count(self, builder):
        plan = builder.aggregate(
            builder.scan("events_2024_01_01"), keys=("user_id",), group_count=100, tag="s:a"
        )
        scaled = scale_tables(plan, {"events_2024_01_01": 10.0})
        assert scaled.true_card == pytest.approx(100.0)

    def test_topk_capped_by_limit(self, builder):
        plan = builder.topk(
            builder.scan("users_2024_01_01"), keys=("user_id",), k=10, tag="s:t"
        )
        scaled = scale_tables(plan, {"users_2024_01_01": 5.0})
        assert scaled.true_card == pytest.approx(10.0)

    def test_join_fanout_preserved(self, builder):
        events = builder.scan("events_2024_01_01")
        users = builder.scan("users_2024_01_01")
        plan = builder.join(events, users, keys=("user_id", "user_id"), fanout=0.5, tag="s:j")
        scaled = scale_tables(plan, {"events_2024_01_01": 3.0})
        assert scaled.true_card == pytest.approx(events.true_card * 3.0 * 0.5)

    def test_union_sums_children(self, builder):
        one = builder.scan("events_2024_01_01")
        two = builder.scan("users_2024_01_01")
        plan = builder.union(one, two, tag="s:u")
        scaled = scale_tables(plan, {"users_2024_01_01": 2.0})
        assert scaled.true_card == pytest.approx(
            one.true_card + two.true_card * 2.0
        )

    def test_unscaled_plan_is_unchanged_object(self, builder):
        plan = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.25, tag="s:f")
        scaled = scale_tables(plan, {"not_a_table": 9.0})
        assert scaled is plan

    def test_invalid_factor_rejected(self, builder):
        plan = builder.scan("events_2024_01_01")
        with pytest.raises(ValidationError):
            scale_tables(plan, {"events_2024_01_01": 0.0})


class TestWhatIfAnalyzer:
    @pytest.fixture()
    def analyzer(self, tiny_bundle, tiny_predictor):
        return WhatIfAnalyzer(tiny_predictor, tiny_bundle.fresh_estimator())

    def test_identity_transform_is_neutral(self, analyzer, workload):
        outcome = analyzer.evaluate(workload["a"], lambda plan: plan, job_id="a")
        assert outcome.latency_delta_pct == pytest.approx(0.0, abs=1e-9)
        assert outcome.cpu_delta_pct == pytest.approx(0.0, abs=1e-9)

    def test_materialization_outcomes_cover_consumer_jobs(
        self, analyzer, workload, shared_fragment
    ):
        candidates = find_materialization_candidates(workload)
        target = next(c for c in candidates if c.key == subtree_key(shared_fragment))
        outcomes = analyzer.evaluate_materialization(workload, target)
        assert [o.job_id for o in outcomes] == ["a", "b"]
        for outcome in outcomes:
            assert outcome.baseline.latency_seconds > 0
            assert outcome.variant.latency_seconds > 0

    def test_growth_factors_evaluated_in_order(self, analyzer, workload):
        results = analyzer.evaluate_growth(
            workload["a"], "events_2024_01_01", [1.0, 4.0], job_id="a"
        )
        assert [factor for factor, _ in results] == [1.0, 4.0]
        identity = results[0][1]
        assert identity.latency_delta_pct == pytest.approx(0.0, abs=1e-9)

    def test_growth_requires_factors(self, analyzer, workload):
        with pytest.raises(ValidationError):
            analyzer.evaluate_growth(workload["a"], "events_2024_01_01", [])

    def test_outcome_describe(self, analyzer, workload):
        outcome = analyzer.evaluate(workload["a"], lambda plan: plan, job_id="a")
        text = outcome.describe()
        assert "a:" in text and "latency" in text
