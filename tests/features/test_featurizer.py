"""Tests for feature extraction (Tables 2-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.extract import feature_input_for
from repro.features.featurizer import (
    ALL_FEATURE_NAMES,
    BASIC_FEATURE_NAMES,
    CONTEXT_FEATURE_NAMES,
    DERIVED_FEATURE_NAMES,
    FEATURE_FUNCTIONS,
    INVERSE_P_FEATURES,
    FeatureInput,
    feature_matrix,
    feature_names,
    feature_vector,
    partition_feature_names,
)


def _input(**overrides) -> FeatureInput:
    base = dict(
        input_card=1e6,
        base_card=2e6,
        output_card=1e5,
        avg_row_bytes=100.0,
        partition_count=10.0,
    )
    base.update(overrides)
    return FeatureInput(**base)


class TestFeatureLayout:
    def test_basic_names_match_paper_table2(self):
        assert BASIC_FEATURE_NAMES == ("I", "B", "C", "L", "P", "IN", "PM")

    def test_context_features(self):
        assert CONTEXT_FEATURE_NAMES == ("CL", "D")

    def test_feature_count_in_paper_range(self):
        # The paper cites 25-30 candidate features.
        assert 25 <= len(BASIC_FEATURE_NAMES + DERIVED_FEATURE_NAMES) <= 30

    def test_vector_matches_names(self):
        f = _input()
        assert len(feature_vector(f)) == len(feature_names(False))
        assert len(feature_vector(f, include_context=True)) == len(ALL_FEATURE_NAMES)

    def test_registry_covers_all_names(self):
        assert set(ALL_FEATURE_NAMES) <= set(FEATURE_FUNCTIONS)


class TestFeatureValues:
    def test_selected_derivations(self):
        f = _input()
        values = dict(zip(feature_names(False), feature_vector(f)))
        assert values["I"] == 1e6
        assert values["sqrt(I)"] == pytest.approx(1000.0)
        assert values["I/P"] == pytest.approx(1e5)
        assert values["L*I"] == pytest.approx(1e8)
        assert values["I*C"] == pytest.approx(1e11)
        assert values["P"] == 10.0

    def test_log_features_use_log1p(self):
        f = _input(input_card=0.0, output_card=0.0)
        values = dict(zip(feature_names(False), feature_vector(f)))
        assert values["log(I)*log(C)"] == 0.0

    def test_partition_features_flagged(self):
        flagged = {name for _, name in partition_feature_names()}
        assert "I/P" in flagged and "P" in flagged
        assert "I" not in flagged

    def test_inverse_p_features_shrink_with_p(self):
        small_p = dict(zip(feature_names(False), feature_vector(_input(partition_count=2))))
        large_p = dict(zip(feature_names(False), feature_vector(_input(partition_count=200))))
        for name in INVERSE_P_FEATURES:
            assert large_p[name] < small_p[name]

    def test_with_partition_count(self):
        f = _input()
        g = f.with_partition_count(99)
        assert g.partition_count == 99
        assert g.input_card == f.input_card

    def test_matrix_stacking(self):
        matrix = feature_matrix([_input(), _input(input_card=5.0)])
        assert matrix.shape == (2, len(feature_names(False)))

    def test_empty_matrix(self):
        assert feature_matrix([]).shape == (0, len(feature_names(False)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0, max_value=1e10),
        st.floats(min_value=0, max_value=1e10),
        st.integers(min_value=1, max_value=3000),
    )
    def test_all_features_finite(self, cards, out, partitions):
        f = _input(input_card=cards, output_card=out, partition_count=float(partitions))
        vec = feature_vector(f, include_context=True)
        assert np.isfinite(vec).all()


class TestEncodings:
    def test_input_encoding_stable(self):
        inputs = frozenset({"a", "b"})
        assert FeatureInput.encode_inputs(inputs) == FeatureInput.encode_inputs(inputs)

    def test_input_encoding_distinguishes(self):
        assert FeatureInput.encode_inputs(frozenset({"a"})) != FeatureInput.encode_inputs(
            frozenset({"b"})
        )

    def test_params_encoding(self):
        assert FeatureInput.encode_params(()) == 0.0
        assert FeatureInput.encode_params((2.0, 4.0)) == 3.0


class TestLiveExtraction:
    def test_matches_estimates(self, physical_simple_plan, estimator):
        estimator.reset()
        for op in physical_simple_plan.walk():
            f = feature_input_for(op, estimator)
            assert f.output_card == pytest.approx(estimator.estimate(op))
            assert f.partition_count == op.partition_count
            assert f.depth == op.depth

    def test_partition_override(self, physical_simple_plan, estimator):
        f = feature_input_for(physical_simple_plan, estimator, partition_override=77)
        assert f.partition_count == 77.0
