"""Scalar/columnar featurization parity and FeatureTable behaviour.

The columnar pipeline's contract is that expanding a ``FeatureTable`` is
*bitwise identical* to per-row expansion through the scalar wrappers and
the per-name scalar registry — these tests are the pin.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.featurizer import (
    ALL_FEATURE_NAMES,
    FEATURE_EXPRESSIONS,
    FEATURE_FUNCTIONS,
    FeatureInput,
    feature_matrix,
    feature_names,
    feature_vector,
)
from repro.features.table import FeatureTable

# Cardinalities, widths, and partition counts spanning the simulator's
# realistic ranges (including exact zeros and tiny fractions).
_value = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False),
)
_partitions = st.integers(min_value=1, max_value=3000)


@st.composite
def feature_inputs(draw) -> FeatureInput:
    return FeatureInput(
        input_card=draw(_value),
        base_card=draw(_value),
        output_card=draw(_value),
        avg_row_bytes=draw(st.floats(min_value=1.0, max_value=4096.0)),
        partition_count=float(draw(_partitions)),
        input_enc=draw(st.floats(min_value=0.0, max_value=1.0)),
        params_enc=draw(_value),
        logical_count=float(draw(st.integers(min_value=1, max_value=200))),
        depth=float(draw(st.integers(min_value=1, max_value=60))),
    )


def _scalar_reference_matrix(inputs, include_context: bool) -> np.ndarray:
    """Independent per-row, per-name expansion through the scalar registry."""
    names = feature_names(include_context)
    return np.array(
        [[FEATURE_FUNCTIONS[name](f) for name in names] for f in inputs], dtype=float
    )


class TestScalarColumnarParity:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(feature_inputs(), min_size=1, max_size=12), st.booleans())
    def test_feature_matrix_bitwise_equals_table_expansion(
        self, inputs, include_context
    ):
        table = FeatureTable.from_inputs(inputs)
        columnar = table.feature_matrix(include_context=include_context)
        wrapper = feature_matrix(inputs, include_context=include_context)
        reference = _scalar_reference_matrix(inputs, include_context)
        # Bitwise: compare the raw float64 bit patterns, not just values.
        assert columnar.shape == reference.shape
        assert (columnar.view(np.uint64) == reference.view(np.uint64)).all()
        assert (wrapper.view(np.uint64) == columnar.view(np.uint64)).all()

    @settings(max_examples=25, deadline=None)
    @given(feature_inputs(), st.booleans())
    def test_feature_vector_bitwise_equals_table_row(self, f, include_context):
        table = FeatureTable.from_inputs([f])
        row = table.feature_matrix(include_context=include_context)[0]
        vec = feature_vector(f, include_context=include_context)
        assert (vec.view(np.uint64) == row.view(np.uint64)).all()

    def test_empty_inputs(self):
        for include_context in (False, True):
            width = len(feature_names(include_context))
            matrix = feature_matrix([], include_context=include_context)
            assert matrix.shape == (0, width)
            table = FeatureTable.from_inputs([])
            assert table.feature_matrix(include_context=include_context).shape == (
                0,
                width,
            )

    def test_scalar_registry_matches_columnar_registry(self):
        f = FeatureInput(
            input_card=1e6,
            base_card=2e6,
            output_card=1e5,
            avg_row_bytes=100.0,
            partition_count=10.0,
        )
        table = FeatureTable.from_inputs([f])
        for name in ALL_FEATURE_NAMES:
            scalar = FEATURE_FUNCTIONS[name](f)
            columnar = float(np.asarray(FEATURE_EXPRESSIONS[name](table))[0])
            assert scalar == columnar, name


class TestFeatureTable:
    def test_from_inputs_without_bundles_has_no_signatures(self):
        table = FeatureTable.from_inputs(
            [
                FeatureInput(
                    input_card=1.0,
                    base_card=1.0,
                    output_card=1.0,
                    avg_row_bytes=8.0,
                    partition_count=1.0,
                )
            ]
        )
        assert not table.has_signatures
        with pytest.raises(KeyError):
            table.signature_column("strict")

    def test_from_records_round_trip(self, tiny_bundle):
        records = list(tiny_bundle.log.operator_records())[:64]
        table = FeatureTable.from_records(records)
        assert len(table) == len(records)
        for i in (0, len(records) // 2, len(records) - 1):
            r = records[i]
            assert table.input_card[i] == r.features.input_card
            assert table.partition_count[i] == r.features.partition_count
            assert table.latency[i] == r.actual_latency
            assert int(table.signature_column("strict")[i]) == r.signatures.strict
            assert int(table.signature_column("operator")[i]) == r.signatures.operator
            assert table.day[i] == r.day
            assert table.cluster[i] == r.cluster

    def test_group_by_signature_partitions_all_rows(self, tiny_bundle):
        table = tiny_bundle.log.to_table()
        uniques, order, starts, counts = table.group_by_signature("operator")
        assert counts.sum() == len(table)
        assert sorted(order.tolist()) == list(range(len(table)))
        column = table.signature_column("operator")
        for signature, start, count in zip(uniques, starts, counts):
            group = order[start : start + count]
            assert (column[group] == signature).all()
            # Stable grouping: original record order preserved within groups.
            assert (np.diff(group) > 0).all()

    def test_run_log_table_cached_and_invalidated(self, tiny_bundle):
        log = tiny_bundle.log.filter(days=[1])
        table = log.to_table()
        assert log.to_table() is table  # cached
        job = tiny_bundle.log.jobs[-1]
        log.append(job)
        table2 = log.to_table()
        assert table2 is not table
        assert len(table2) == len(table) + len(job.operators)
