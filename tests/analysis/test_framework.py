"""Framework-level tests: pragma parsing, suppression, baseline round-trip."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    ALL_RULES,
    AnalysisConfig,
    Baseline,
    Finding,
    apply_baseline,
    run_analysis,
)
from repro.analysis.framework import PRAGMA_RULE, parse_pragmas

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(*names: str):
    config = AnalysisConfig.unscoped(ALL_RULES)
    return run_analysis(
        [FIXTURES / name for name in names], ALL_RULES, config, root=FIXTURES
    )


class TestPragmaParsing:
    def test_inline_pragma(self):
        pragmas, problems = parse_pragmas(
            "x = hash(y)  # repro: allow(hashseed-hazard) -- y is an int\n", "m.py"
        )
        assert problems == []
        (pragma,) = pragmas
        assert pragma.rules == ("hashseed-hazard",)
        assert pragma.justification == "y is an int"
        assert not pragma.standalone
        assert pragma.covers("hashseed-hazard", 1)
        assert not pragma.covers("hashseed-hazard", 2)  # inline: same line only
        assert not pragma.covers("wallclock-rng", 1)

    def test_standalone_pragma_covers_next_line(self):
        source = "# repro: allow(wallclock-rng) -- explicit strategy seed\nr = f(s)\n"
        pragmas, problems = parse_pragmas(source, "m.py")
        assert problems == []
        (pragma,) = pragmas
        assert pragma.standalone
        assert pragma.covers("wallclock-rng", 1)
        assert pragma.covers("wallclock-rng", 2)
        assert not pragma.covers("wallclock-rng", 3)

    def test_multi_rule_pragma_sorted(self):
        pragmas, _ = parse_pragmas(
            "# repro: allow(wallclock-rng, hashseed-hazard) -- both safe here\n",
            "m.py",
        )
        assert pragmas[0].rules == ("hashseed-hazard", "wallclock-rng")

    def test_malformed_pragma_is_a_finding(self):
        _, problems = parse_pragmas("# repro:allow wallclock-rng oops\n", "m.py")
        (problem,) = problems
        assert problem.rule == PRAGMA_RULE
        assert "malformed" in problem.message

    def test_justification_is_mandatory(self):
        _, problems = parse_pragmas("x = 1  # repro: allow(hashseed-hazard)\n", "m.py")
        (problem,) = problems
        assert "justification" in problem.message

    def test_pragma_text_inside_strings_is_ignored(self):
        source = 's = "# repro: allow(bogus)"\n'
        pragmas, problems = parse_pragmas(source, "m.py")
        assert pragmas == [] and problems == []


class TestPragmaSuppression:
    def test_well_formed_pragmas_suppress_findings(self):
        report = lint_fixture("pragma_ok.py")
        assert report.findings == []
        assert not report.failed

    def test_bad_pragma_fixture_surfaces_everything(self):
        report = lint_fixture("pragma_bad.py")
        assert report.failed
        rules = sorted(f.rule for f in report.findings)
        # Malformed pragma + justification-free pragma (both framework
        # errors), the hash() the rejected pragma failed to suppress, and
        # the unused-pragma warning.
        assert rules == ["hashseed-hazard", PRAGMA_RULE, PRAGMA_RULE, PRAGMA_RULE]
        assert [w.severity for w in report.warnings] == ["warning"]
        assert "unused pragma" in report.warnings[0].message


class TestBaseline:
    def test_round_trip_and_apply(self, tmp_path):
        report = lint_fixture("floatred_bad.py")
        assert report.failed
        path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(path)
        reloaded = Baseline.load(path)
        filtered = apply_baseline(lint_fixture("floatred_bad.py"), reloaded)
        assert filtered.findings == []
        assert len(filtered.baselined) == len(report.findings)
        assert not filtered.failed

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        report = lint_fixture("floatred_bad.py")
        assert apply_baseline(report, baseline).failed

    def test_extra_occurrences_surface_as_new(self, tmp_path):
        report = lint_fixture("floatred_bad.py")
        first_only = Baseline.from_findings(report.findings[:1])
        filtered = apply_baseline(report, first_only)
        assert len(filtered.baselined) == 1
        assert len(filtered.findings) == len(report.findings) - 1
        assert filtered.failed

    def test_fingerprint_is_line_free(self):
        a = Finding("p.py", 3, 0, "r", "m")
        b = Finding("p.py", 99, 4, "r", "m")
        assert a.fingerprint() == b.fingerprint()
