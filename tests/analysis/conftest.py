"""The fixtures tree is lint-rule input, not test code — never collect it."""

collect_ignore = ["fixtures"]
