"""Per-rule fixture tests: each bad fixture flags, each good twin is clean.

Fixtures live outside the rules' default module scopes, so these run the
analyzer with :meth:`AnalysisConfig.unscoped` — the same switch the CLI
exposes as ``--unscoped``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ALL_RULES, AnalysisConfig, run_analysis

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(*names: str, tests: str | None = None):
    config = AnalysisConfig.unscoped(ALL_RULES)
    return run_analysis(
        [FIXTURES / name for name in names],
        ALL_RULES,
        config,
        root=FIXTURES,
        tests_path=FIXTURES / tests if tests else None,
    )


class TestHashSeedHazard:
    def test_bad_fixture_flags_every_construct(self):
        report = lint_fixture("hashseed_bad.py")
        assert report.failed
        assert {f.rule for f in report.findings} == {"hashseed-hazard"}
        # hash(), for-over-set, list(set), join(set), min(set, key=),
        # comprehension over a set-valued attribute.
        assert len(report.findings) == 6

    def test_good_twin_is_clean(self):
        report = lint_fixture("hashseed_good.py")
        assert report.findings == []
        assert not report.failed


class TestWallClockRng:
    def test_bad_fixture_flags_every_call(self):
        report = lint_fixture("wallclock_bad.py")
        assert report.failed
        assert {f.rule for f in report.findings} == {"wallclock-rng"}
        # time.time, datetime.now, random.random, default_rng, np.random.normal
        assert len(report.findings) == 5
        assert any("derive_rng" in f.message for f in report.findings)

    def test_good_twin_is_clean(self):
        report = lint_fixture("wallclock_good.py")
        assert report.findings == []


class TestFloatReduction:
    def test_bad_fixture_flags_every_reduction(self):
        report = lint_fixture("floatred_bad.py")
        assert report.failed
        assert {f.rule for f in report.findings} == {"float-reduction"}
        # np.sum, np.mean, @, np.dot, .dot(), axis-less .sum()
        assert len(report.findings) == 6

    def test_good_twin_is_clean(self):
        report = lint_fixture("floatred_good.py")
        assert report.findings == []


class TestLockDiscipline:
    def test_bad_fixture_flags_both_halves(self):
        report = lint_fixture("locks_bad.py")
        assert report.failed
        assert {f.rule for f in report.findings} == {"lock-discipline"}
        messages = " | ".join(f.message for f in report.findings)
        assert "predict_batch" in messages  # compute under the lock
        assert "_calls" in messages  # unlocked mutation of guarded state
        assert len(report.findings) == 2

    def test_good_twin_is_clean(self):
        report = lint_fixture("locks_good.py")
        assert report.findings == []


class TestReferenceParity:
    def test_orphaned_reference_is_flagged(self):
        report = lint_fixture("refparity/src", tests="refparity/tests_bad")
        assert report.failed
        assert {f.rule for f in report.findings} == {"reference-parity"}
        assert len(report.findings) == 1
        assert "rank_reference" in report.findings[0].message

    def test_exercised_references_are_clean(self):
        report = lint_fixture("refparity/src", tests="refparity/tests_good")
        assert report.findings == []

    def test_private_reference_is_never_required(self):
        report = lint_fixture("refparity/src", tests="refparity/tests_bad")
        assert not any("_probe_reference" in f.message for f in report.findings)
