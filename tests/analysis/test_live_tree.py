"""End-to-end lint runs: live-tree cleanliness, CLI exit codes, and the
cross-process determinism pin (``--json`` output must be byte-identical
across PYTHONHASHSEED values).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    ALL_RULES,
    AnalysisConfig,
    Baseline,
    apply_baseline,
    run_analysis,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
LINT = REPO_ROOT / "scripts" / "lint.py"

BAD_FIXTURES = [
    "hashseed_bad.py",
    "wallclock_bad.py",
    "floatred_bad.py",
    "locks_bad.py",
    "pragma_bad.py",
]


def run_lint(*argv: str, env: dict[str, str] | None = None):
    cmd = [sys.executable, str(LINT), *argv]
    merged = {"PATH": "/usr/bin:/bin", "PYTHONHASHSEED": "0"}
    if env:
        merged.update(env)
    return subprocess.run(
        cmd, cwd=REPO_ROOT, env=merged, capture_output=True, text=True, timeout=300
    )


class TestLiveTree:
    def test_src_is_clean_under_shipped_baseline(self):
        """Meta-test: the shipped tree passes its own lint gate in-process."""
        report = run_analysis(
            [REPO_ROOT / "src" / "repro"],
            ALL_RULES,
            AnalysisConfig.default(ALL_RULES),
            root=REPO_ROOT,
            tests_path=REPO_ROOT / "tests",
        )
        baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
        filtered = apply_baseline(report, baseline)
        assert filtered.findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in filtered.findings
        )

    def test_cli_exits_zero_on_shipped_tree(self):
        proc = run_lint("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestCliExitCodes:
    def test_each_bad_fixture_fails(self):
        for name in BAD_FIXTURES:
            proc = run_lint(
                str(FIXTURES / name),
                "--root",
                str(FIXTURES),
                "--unscoped",
                "--no-baseline",
            )
            assert proc.returncode == 1, f"{name}: {proc.stdout}{proc.stderr}"

    def test_each_good_twin_passes(self):
        for name in [
            "hashseed_good.py",
            "wallclock_good.py",
            "floatred_good.py",
            "locks_good.py",
            "pragma_ok.py",
        ]:
            proc = run_lint(
                str(FIXTURES / name),
                "--root",
                str(FIXTURES),
                "--unscoped",
                "--no-baseline",
            )
            assert proc.returncode == 0, f"{name}: {proc.stdout}{proc.stderr}"

    def test_refparity_exit_codes_follow_tests_tree(self):
        base = [
            str(FIXTURES / "refparity" / "src"),
            "--root",
            str(FIXTURES),
            "--unscoped",
            "--no-baseline",
        ]
        bad = run_lint(*base, "--tests", str(FIXTURES / "refparity" / "tests_bad"))
        good = run_lint(*base, "--tests", str(FIXTURES / "refparity" / "tests_good"))
        assert bad.returncode == 1, bad.stdout + bad.stderr
        assert good.returncode == 0, good.stdout + good.stderr

    def test_unknown_rule_is_a_usage_error(self):
        proc = run_lint("src/repro", "--disable", "no-such-rule")
        assert proc.returncode == 2


class TestCrossProcessDeterminism:
    """PYTHONHASHSEED 0 vs 42 must not change a byte of ``--json`` output."""

    def _json_bytes(self, hashseed: str, *argv: str) -> str:
        proc = run_lint(*argv, "--json", env={"PYTHONHASHSEED": hashseed})
        assert proc.returncode in (0, 1), proc.stderr
        return proc.stdout

    def test_live_tree_json_is_hashseed_invariant(self):
        assert self._json_bytes("0", "src/repro") == self._json_bytes(
            "42", "src/repro"
        )

    def test_fixture_findings_json_is_hashseed_invariant(self):
        # The fixtures directory produces dozens of findings across many
        # files — a much stronger ordering pin than the clean live tree.
        argv = (str(FIXTURES), "--root", str(FIXTURES), "--unscoped", "--no-baseline")
        assert self._json_bytes("0", *argv) == self._json_bytes("42", *argv)
