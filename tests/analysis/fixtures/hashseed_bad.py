"""Known-bad fixture: every construct hashseed-hazard must flag."""


def route(shard_names):
    return hash(tuple(shard_names)) % 8


def plan_order(requirements):
    pairs = {("sort", "hash"), ("merge", "range")}
    chosen = []
    for pair in pairs:
        chosen.append(pair)
    ordered = list({1, 2, 3})
    labels = ",".join({"a", "b"})
    best = min({"x", "y"}, key=len)
    return chosen, ordered, labels, best


class Planner:
    def __init__(self):
        self.pairs = {("broadcast", "none")}

    def flips(self):
        return [p for p in self.pairs]
