"""Known-bad fixture: wall-clock and unseeded-RNG calls wallclock-rng flags."""

import random
import time
from datetime import datetime

import numpy as np


def decide_fault(seed):
    now = time.time()
    stamp = datetime.now()
    coin = random.random()
    rng = np.random.default_rng(seed)
    draw = np.random.normal()
    return now, stamp, coin, rng, draw
