"""Good tests tree: exercises both public references."""

from pricing import rank_fast, rank_reference, score_fast, score_reference


def test_score_parity():
    assert score_fast(3) == score_reference(3)


def test_rank_parity():
    assert rank_fast([2, 1]) == rank_reference([2, 1])
