"""Reference-parity fixture module: two public references, one private.

``score_reference`` is exercised by the good tests tree; ``rank_reference``
only by the good tree, so the bad tree leaves it orphaned.  The leading
underscore exempts ``_probe_reference`` regardless of the tests tree.
"""


def score_fast(x):
    return x * 2


def score_reference(x):
    return x + x


def rank_fast(xs):
    return sorted(xs)


def rank_reference(xs):
    out = list(xs)
    out.sort()
    return out


def _probe_reference(x):
    return x
