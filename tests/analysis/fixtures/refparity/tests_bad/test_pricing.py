"""Bad tests tree: exercises score_reference but leaves rank_reference orphaned."""

from pricing import score_fast, score_reference


def test_score_parity():
    assert score_fast(3) == score_reference(3)
