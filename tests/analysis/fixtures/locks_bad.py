"""Known-bad fixture: model compute under a lock + unlocked counter mutation."""

from threading import Lock


class ShardService:
    def __init__(self):
        self._stats_lock = Lock()
        self._calls = 0
        self.model = None

    def serve(self, rows):
        with self._stats_lock:
            values = self.model.predict_batch(rows)
            self._calls += 1
        return values

    def reset_counters(self):
        self._calls = 0
