"""Known-good twin of floatred_bad: batch-invariant reduction primitives."""

import numpy as np


def fold(matrix, weights, starts):
    segments = np.add.reduceat(matrix, starts, axis=0)
    rows = (matrix * weights).sum(axis=1)
    positives = int((matrix > 0).sum())
    col_means = matrix.mean(axis=0)
    return segments, rows, positives, col_means
