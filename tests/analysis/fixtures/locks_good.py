"""Known-good twin of locks_bad: compute outside the lock, counters inside."""

from threading import Lock


class ShardService:
    def __init__(self):
        self._stats_lock = Lock()
        self._calls = 0
        self.model = None

    def serve(self, rows):
        values = self.model.predict_batch(rows)
        with self._stats_lock:
            self._calls += 1
        return values

    def reset_counters(self):
        with self._stats_lock:
            self._calls = 0
