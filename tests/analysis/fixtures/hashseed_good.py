"""Known-good twin of hashseed_bad: same logic, order-free constructs."""

from repro.common.hashing import stable_hash


def route(shard_names):
    return stable_hash("route", *shard_names) % 8


def plan_order(requirements):
    pairs = [("sort", "hash"), ("merge", "range")]
    chosen = []
    for pair in pairs:
        chosen.append(pair)
    ordered = sorted({1, 2, 3})
    labels = ",".join(sorted({"a", "b"}))
    best = min(sorted({"x", "y"}), key=len)
    has_sort = "sort" in {"sort", "merge"}
    width = len({1, 2, 3})
    return chosen, ordered, labels, best, has_sort, width


class Planner:
    def __init__(self):
        self.pairs = [("broadcast", "none")]

    def flips(self):
        return [p for p in self.pairs]
