"""Fixture: malformed, justification-free, and unused pragmas."""


def noop(x):
    # repro: allow(wallclock-rng) -- nothing on the next line trips this rule
    plain = x + 1
    # repro:allow wallclock-rng missing parentheses entirely
    also_plain = plain * 2
    salted = hash(x)  # repro: allow(hashseed-hazard)
    return also_plain + salted
