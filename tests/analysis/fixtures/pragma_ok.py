"""Fixture: flagged constructs suppressed by well-formed pragmas."""

import numpy as np


def sample(seed):
    # repro: allow(wallclock-rng) -- fixture: strategy seed is an explicit int
    rng = np.random.default_rng(seed)
    total = np.sum(rng.normal(size=8))  # repro: allow(float-reduction) -- fixture: scalar draw
    return total
