"""Known-good twin of wallclock_bad: derived RNG, perf_counter telemetry."""

import time

from repro.common.rng import derive_rng


def decide_fault(seed):
    started = time.perf_counter()
    rng = derive_rng(seed, "faults")
    draw = rng.normal()
    elapsed = time.perf_counter() - started
    return draw, elapsed
