"""Known-bad fixture: shape-dependent reductions float-reduction flags."""

import numpy as np


def fold(matrix, weights):
    total = np.sum(matrix)
    centre = np.mean(matrix)
    proj = matrix @ weights
    dotted = np.dot(matrix, weights)
    method_dot = matrix.dot(weights)
    rowless = matrix.sum()
    return total, centre, proj, dotted, method_dot, rowless
