"""Tests for the TPC-H catalog generator."""

from __future__ import annotations

import pytest

from repro.data.tpch import ALL_TABLES, tpch_catalog


class TestTpchCatalog:
    def test_all_tables_present(self):
        catalog = tpch_catalog(1.0)
        for table in ALL_TABLES:
            assert catalog.has_table(table.name)

    def test_base_cardinalities_sf1(self):
        catalog = tpch_catalog(1.0)
        assert catalog.stats("lineitem").row_count == pytest.approx(6_001_215)
        assert catalog.stats("orders").row_count == pytest.approx(1_500_000)
        assert catalog.stats("customer").row_count == pytest.approx(150_000)
        assert catalog.stats("supplier").row_count == pytest.approx(10_000)

    def test_fixed_tables_do_not_scale(self):
        catalog = tpch_catalog(100.0)
        assert catalog.stats("nation").row_count == 25
        assert catalog.stats("region").row_count == 5

    def test_scaling_is_linear(self):
        sf1 = tpch_catalog(1.0).stats("lineitem").row_count
        sf10 = tpch_catalog(10.0).stats("lineitem").row_count
        assert sf10 == pytest.approx(10 * sf1)

    def test_partition_counts_grow_with_sf(self):
        small = tpch_catalog(1.0).stats("lineitem").partition_count
        large = tpch_catalog(100.0).stats("lineitem").partition_count
        assert large > small >= 1

    def test_key_distinct_counts(self):
        catalog = tpch_catalog(2.0)
        stats = catalog.stats("orders")
        assert stats.column("o_orderkey").distinct_count == pytest.approx(3_000_000)
        assert stats.column("o_orderpriority").distinct_count == 5

    def test_date_ranges(self):
        li = tpch_catalog(1.0).stats("lineitem")
        ship = li.column("l_shipdate")
        assert ship.min_value is not None and ship.max_value is not None
        assert ship.max_value > ship.min_value

    def test_rejects_bad_scale_factor(self):
        with pytest.raises(ValueError):
            tpch_catalog(0.0)

    def test_row_widths_positive(self):
        catalog = tpch_catalog(1.0)
        for table in ALL_TABLES:
            assert catalog.stats(table.name).avg_row_bytes > 0
