"""Tests for schema definitions, table statistics, and the catalog."""

from __future__ import annotations

import pytest

from repro.data.catalog import Catalog
from repro.data.schema import Column, DataType, TableDef
from repro.data.statistics import ColumnStats, TableStats


class TestColumn:
    def test_width_from_type(self):
        assert Column("a", DataType.BIGINT).width_bytes == 8

    def test_width_override(self):
        assert Column("c", DataType.STRING, avg_width=100).width_bytes == 100

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Column("", DataType.INT)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            Column("a", DataType.INT, avg_width=0)


class TestTableDef:
    def test_row_width_is_sum(self):
        table = TableDef("t", (Column("a", DataType.INT), Column("b", DataType.BIGINT)))
        assert table.row_width_bytes == 12

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableDef("t", (Column("a", DataType.INT), Column("a", DataType.INT)))

    def test_column_lookup(self):
        table = TableDef("t", (Column("a", DataType.INT),))
        assert table.column("a").dtype is DataType.INT
        with pytest.raises(KeyError):
            table.column("missing")

    def test_has_column(self):
        table = TableDef("t", (Column("a", DataType.INT),))
        assert table.has_column("a") and not table.has_column("b")


class TestTableStats:
    def test_total_bytes(self):
        stats = TableStats(row_count=100, avg_row_bytes=10)
        assert stats.total_bytes == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            TableStats(row_count=-1, avg_row_bytes=10)
        with pytest.raises(ValueError):
            TableStats(row_count=1, avg_row_bytes=0)
        with pytest.raises(ValueError):
            TableStats(row_count=1, avg_row_bytes=1, partition_count=0)

    def test_scaled_rows_and_partitions(self):
        stats = TableStats(row_count=1000, avg_row_bytes=10, partition_count=4)
        scaled = stats.scaled(2.0)
        assert scaled.row_count == 2000
        assert scaled.partition_count == 8
        assert scaled.avg_row_bytes == 10

    def test_scaled_distinct_sublinear(self):
        stats = TableStats(
            row_count=1000, avg_row_bytes=10,
            columns={"k": ColumnStats(distinct_count=100)},
        )
        scaled = stats.scaled(4.0)
        assert scaled.column("k").distinct_count == pytest.approx(200.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TableStats(row_count=1, avg_row_bytes=1).scaled(0)

    def test_column_stats_validation(self):
        with pytest.raises(ValueError):
            ColumnStats(distinct_count=-1)
        with pytest.raises(ValueError):
            ColumnStats(distinct_count=1, null_fraction=2.0)


class TestCatalog:
    def _catalog(self) -> Catalog:
        catalog = Catalog("c")
        catalog.add_table(
            TableDef("t", (Column("a", DataType.INT),)),
            TableStats(row_count=10, avg_row_bytes=4),
        )
        return catalog

    def test_roundtrip(self):
        catalog = self._catalog()
        assert catalog.table("t").name == "t"
        assert catalog.stats("t").row_count == 10

    def test_missing_table(self):
        with pytest.raises(KeyError):
            self._catalog().table("nope")
        with pytest.raises(KeyError):
            self._catalog().stats("nope")

    def test_set_stats_requires_table(self):
        catalog = self._catalog()
        with pytest.raises(KeyError):
            catalog.set_stats("nope", TableStats(row_count=1, avg_row_bytes=1))

    def test_contains_and_len(self):
        catalog = self._catalog()
        assert "t" in catalog and "x" not in catalog
        assert len(catalog) == 1

    def test_scaled_catalog(self):
        scaled = self._catalog().scaled(3.0)
        assert scaled.stats("t").row_count == 30
