"""Shared fixtures for the test suite.

The expensive fixtures (workload bundle, trained predictor) are session
scoped and deliberately tiny; tests that need statistical signal assert
*shape* invariants (orderings, monotonicity, coverage bands) rather than
absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.data.catalog import Catalog
from repro.data.schema import Column, DataType, TableDef
from repro.data.statistics import ColumnStats, TableStats
from repro.execution.hardware import ClusterSpec
from repro.plan.builder import PlanBuilder


def make_test_catalog() -> Catalog:
    """A small two-table catalog used across plan/optimizer tests."""
    catalog = Catalog(name="test")
    events = TableDef(
        "events_2024_01_01",
        (
            Column("user_id", DataType.BIGINT),
            Column("ts", DataType.DATE),
            Column("value", DataType.FLOAT),
        ),
    )
    users = TableDef(
        "users_2024_01_01",
        (
            Column("user_id", DataType.BIGINT),
            Column("country", DataType.STRING),
        ),
    )
    catalog.add_table(
        events,
        TableStats(
            row_count=10_000_000,
            avg_row_bytes=64.0,
            columns={"user_id": ColumnStats(distinct_count=100_000)},
            partition_count=8,
        ),
    )
    catalog.add_table(
        users,
        TableStats(
            row_count=100_000,
            avg_row_bytes=48.0,
            columns={"user_id": ColumnStats(distinct_count=100_000)},
            partition_count=2,
        ),
    )
    return catalog


@pytest.fixture()
def catalog() -> Catalog:
    return make_test_catalog()


@pytest.fixture()
def builder(catalog: Catalog) -> PlanBuilder:
    return PlanBuilder(catalog)


@pytest.fixture()
def simple_plan(builder: PlanBuilder):
    """scan -> filter -> aggregate -> output."""
    scanned = builder.scan("events_2024_01_01")
    filtered = builder.filter(scanned, "value", 0.1, tag="t:f")
    aggregated = builder.aggregate(filtered, keys=("user_id",), group_count=50_000, tag="t:agg")
    return builder.output(aggregated, name="report")


@pytest.fixture()
def join_plan(builder: PlanBuilder):
    """Two-table join with filters and aggregation."""
    events = builder.filter(builder.scan("events_2024_01_01"), "ts", 0.2, tag="t:fe")
    users = builder.filter(builder.scan("users_2024_01_01"), "country", 0.5, tag="t:fu")
    joined = builder.join(events, users, keys=("user_id", "user_id"), fanout=0.2, tag="t:j")
    aggregated = builder.aggregate(joined, keys=("country",), group_count=25, tag="t:agg")
    return builder.output(builder.sort(aggregated, keys=("country",), tag="t:s"), name="out")


@pytest.fixture()
def estimator() -> CardinalityEstimator:
    return CardinalityEstimator()


@pytest.fixture()
def cluster() -> ClusterSpec:
    return ClusterSpec(name="testcluster", noise_sigma=0.0, outlier_probability=0.0)


@pytest.fixture()
def planner(estimator):
    from repro.cost.default_model import DefaultCostModel
    from repro.optimizer.planner import PlannerConfig, QueryPlanner

    return QueryPlanner(DefaultCostModel(), estimator, PlannerConfig())


@pytest.fixture()
def physical_join_plan(planner, join_plan):
    return planner.plan(join_plan).plan


@pytest.fixture()
def physical_simple_plan(planner, simple_plan):
    return planner.plan(simple_plan).plan


# --------------------------------------------------------------------- #
# Session-scoped trained bundle (expensive; built once)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def tiny_bundle():
    """A tiny cluster-1 workload bundle with plans kept."""
    from repro.experiments.shared import get_bundle

    return get_bundle("cluster1", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_predictor(tiny_bundle):
    return tiny_bundle.predictor()
