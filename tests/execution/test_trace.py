"""Tests for execution traces and critical-path analysis."""

from __future__ import annotations

import pytest

from repro.execution.simulator import ExecutionSimulator
from repro.execution.trace import compare_traces, trace_job
from repro.plan.stages import build_stage_graph


@pytest.fixture()
def simulator(cluster):
    return ExecutionSimulator(cluster, seed=0)


class TestTraceJob:
    def test_total_matches_simulator(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        assert trace.total_latency == pytest.approx(
            simulator.expected_job_latency(physical_join_plan)
        )

    def test_one_trace_per_stage(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        graph = build_stage_graph(physical_join_plan)
        assert len(trace.stages) == len(graph.stages)

    def test_stages_start_after_upstreams(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        graph = build_stage_graph(physical_join_plan)
        finish = {s.index: s.finish_seconds for s in trace.stages}
        for stage_trace in trace.stages:
            upstream = graph.stages[stage_trace.index].upstream
            for u in upstream:
                assert stage_trace.start_seconds >= finish[u] - 1e-9

    def test_critical_path_nonempty_and_connected(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        critical = trace.critical_path
        assert critical
        # The final stage is always on the critical path.
        last = max(trace.stages, key=lambda s: s.finish_seconds)
        assert last.on_critical_path

    def test_critical_path_duration_equals_total(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        critical_duration = sum(s.duration for s in trace.critical_path)
        assert critical_duration == pytest.approx(trace.total_latency)

    def test_bottleneck_is_longest_critical_stage(self, simulator, physical_join_plan):
        trace = trace_job(simulator, physical_join_plan)
        bottleneck = trace.bottleneck()
        assert bottleneck.duration == max(s.duration for s in trace.critical_path)

    def test_describe_mentions_all_stages(self, simulator, physical_simple_plan):
        trace = trace_job(simulator, physical_simple_plan)
        text = trace.describe()
        assert text.count("stage") >= len(trace.stages)

    def test_compare_traces_reports_delta(self, simulator, physical_join_plan, physical_simple_plan):
        before = trace_job(simulator, physical_join_plan)
        after = trace_job(simulator, physical_simple_plan)
        text = compare_traces(before, after)
        assert "latency:" in text and "bottleneck" in text
