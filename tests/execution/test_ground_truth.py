"""Tests for the hidden ground-truth latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.execution.ground_truth import GroundTruthModel, GroundTruthParams
from repro.execution.hardware import ClusterSpec
from repro.plan.physical import PhysOpType


@pytest.fixture()
def ground_truth(cluster):
    return GroundTruthModel(cluster)


class TestHiddenMultipliers:
    def test_deterministic(self, ground_truth, physical_join_plan):
        for op in physical_join_plan.walk():
            assert ground_truth.hidden_multiplier(op) == ground_truth.hidden_multiplier(op)

    def test_positive(self, ground_truth, physical_join_plan):
        for op in physical_join_plan.walk():
            assert ground_truth.hidden_multiplier(op) > 0

    def test_cluster_specific(self, physical_simple_plan):
        gt1 = GroundTruthModel(ClusterSpec(name="a"))
        gt2 = GroundTruthModel(ClusterSpec(name="b"))
        ops = list(physical_simple_plan.walk())
        m1 = [gt1.hidden_multiplier(op) for op in ops]
        m2 = [gt2.hidden_multiplier(op) for op in ops]
        assert m1 != m2

    def test_zero_sigmas_give_unit_multiplier(self, cluster, physical_simple_plan):
        params = GroundTruthParams(
            sigma_op=0, sigma_input=0, sigma_ctx=0, sigma_residual=0, sigma_udf=0
        )
        gt = GroundTruthModel(cluster, params)
        for op in physical_simple_plan.walk():
            if not any(child.is_blocking for child in op.children):
                assert gt.hidden_multiplier(op) == pytest.approx(1.0)

    def test_blocking_child_penalty(self, cluster, physical_join_plan):
        params = GroundTruthParams(
            sigma_op=0, sigma_input=0, sigma_ctx=0, sigma_residual=0, sigma_udf=0
        )
        gt = GroundTruthModel(cluster, params)
        blocked = [
            op
            for op in physical_join_plan.walk()
            if any(child.is_blocking for child in op.children)
        ]
        for op in blocked:
            assert gt.hidden_multiplier(op) == pytest.approx(1.15)


class TestLatency:
    def test_noise_free_is_deterministic(self, ground_truth, physical_join_plan):
        for op in physical_join_plan.walk():
            assert ground_truth.exclusive_latency(op) == ground_truth.exclusive_latency(op)

    def test_latency_floor(self, ground_truth, physical_simple_plan):
        for op in physical_simple_plan.walk():
            assert (
                ground_truth.exclusive_latency(op) >= ground_truth.params.min_latency
            )

    def test_noise_multiplies(self, physical_simple_plan):
        noisy_gt = GroundTruthModel(ClusterSpec(name="noisy", noise_sigma=0.2))
        op = physical_simple_plan
        rng = np.random.default_rng(0)
        noisy = [noisy_gt.exclusive_latency(op, rng=rng) for _ in range(20)]
        assert len(set(noisy)) > 1

    def test_work_decreases_with_partitions(self, ground_truth, physical_simple_plan):
        big = [
            op for op in physical_simple_plan.walk() if op.input_card > 1e6
        ]
        assert big
        op = big[0]
        w1 = ground_truth.work_per_partition(op.with_partition_count(1))
        w8 = ground_truth.work_per_partition(op.with_partition_count(8))
        assert w8 < w1

    def test_setup_term_creates_interior_optimum(self, ground_truth, physical_simple_plan):
        """Latency vs P must fall then rise: the resource trade-off exists."""
        big = [op for op in physical_simple_plan.walk() if op.input_card > 1e6]
        op = big[0]
        latencies = [
            ground_truth.exclusive_latency(op.with_partition_count(p))
            for p in (1, 8, 64, 512, 3000)
        ]
        best = int(np.argmin(latencies))
        assert 0 < best < len(latencies) - 1

    def test_hash_join_build_side_asymmetry(self, builder, planner, cluster):
        """Building on the bigger side must cost more than probing it."""
        from repro.optimizer.planner import PlannerConfig, QueryPlanner
        from repro.cost.default_model import DefaultCostModel
        from repro.cardinality import CardinalityEstimator
        from repro.plan.physical import PhysicalOp
        from repro.plan.properties import Partitioning

        gt = GroundTruthModel(cluster)
        big = builder.scan("events_2024_01_01")
        small = builder.scan("users_2024_01_01")
        joined = builder.join(big, small, keys=("user_id", "user_id"), tag="t:j")
        config = PlannerConfig(enable_join_commute=False, enable_merge_join=False)
        plan = QueryPlanner(DefaultCostModel(), CardinalityEstimator(), config).plan(
            builder.output(joined, name="o")
        ).plan
        join_op = next(op for op in plan.walk() if op.op_type is PhysOpType.HASH_JOIN)
        swapped = PhysicalOp(
            op_type=join_op.op_type,
            children=(join_op.children[1], join_op.children[0]),
            logical=join_op.logical,
            partition_count=join_op.partition_count,
            partitioning=join_op.partitioning,
        )
        # join_op probes big/builds small; swapped builds big -> more work.
        assert gt.work_per_partition(swapped) > gt.work_per_partition(join_op)

    def test_cpu_seconds_scale_with_partitions(self, ground_truth, physical_simple_plan):
        op = physical_simple_plan
        latency = ground_truth.exclusive_latency(op)
        cpu = ground_truth.cpu_seconds(op, latency)
        assert cpu == pytest.approx(
            latency * op.partition_count / ground_truth.skew_factor(op)
        )

    def test_udf_multiplier_varies_by_name(self, builder, planner, cluster):
        gt = GroundTruthModel(cluster)
        plans = []
        for udf in ("udf_a", "udf_b"):
            processed = builder.process(
                builder.scan("events_2024_01_01"), udf, tag=f"t:{udf}"
            )
            plans.append(planner.plan(builder.output(processed, name="o")).plan)
        multipliers = []
        for plan in plans:
            op = next(o for o in plan.walk() if o.op_type is PhysOpType.PROCESS)
            multipliers.append(gt.hidden_multiplier(op))
        assert multipliers[0] != multipliers[1]
