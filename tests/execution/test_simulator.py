"""Tests for the execution simulator and run logs."""

from __future__ import annotations

import pytest

from repro.execution.runtime_log import RunLog
from repro.execution.simulator import STAGE_STARTUP_SECONDS, ExecutionSimulator
from repro.plan.stages import build_stage_graph


@pytest.fixture()
def simulator(cluster):
    return ExecutionSimulator(cluster, seed=0)


class TestRunJob:
    def test_one_record_per_operator(self, simulator, physical_join_plan):
        result = simulator.run_job(physical_join_plan, job_id="j1")
        assert len(result.record.operators) == physical_join_plan.node_count

    def test_records_align_with_walk_order(self, simulator, physical_join_plan):
        result = simulator.run_job(physical_join_plan, job_id="j1")
        for op, record in zip(physical_join_plan.walk(), result.record.operators):
            assert record.op_type == op.op_type.value
            assert record.actual_output_card == op.true_card

    def test_deterministic_given_job_id(self, simulator, physical_simple_plan):
        r1 = simulator.run_job(physical_simple_plan, job_id="same")
        r2 = simulator.run_job(physical_simple_plan, job_id="same")
        assert r1.record.latency_seconds == r2.record.latency_seconds

    def test_different_jobs_different_noise(self, cluster, physical_simple_plan):
        noisy_cluster = type(cluster)(name=cluster.name, noise_sigma=0.2)
        sim = ExecutionSimulator(noisy_cluster, seed=0)
        r1 = sim.run_job(physical_simple_plan, job_id="a")
        r2 = sim.run_job(physical_simple_plan, job_id="b")
        assert r1.record.latency_seconds != r2.record.latency_seconds

    def test_latency_is_critical_path(self, simulator, physical_join_plan):
        result = simulator.run_job(physical_join_plan, job_id="j", with_noise=False)
        graph = build_stage_graph(physical_join_plan)
        # Job latency must be at least the largest single-stage latency and
        # no more than the sum of all stages.
        assert max(result.stage_latencies) <= result.record.latency_seconds
        assert result.record.latency_seconds <= sum(result.stage_latencies) + 1e-9
        assert len(result.stage_latencies) == len(graph.stages)

    def test_stage_latency_includes_startup(self, simulator, physical_simple_plan):
        result = simulator.run_job(physical_simple_plan, job_id="j", with_noise=False)
        assert all(s >= STAGE_STARTUP_SECONDS for s in result.stage_latencies)

    def test_expected_latency_matches_noise_free_run(self, simulator, physical_join_plan):
        expected = simulator.expected_job_latency(physical_join_plan)
        run = simulator.run_job(physical_join_plan, job_id="x", with_noise=False)
        assert expected == pytest.approx(run.record.latency_seconds)

    def test_cpu_seconds_positive_and_exceed_none(self, simulator, physical_join_plan):
        assert simulator.expected_cpu_seconds(physical_join_plan) > 0

    def test_input_bytes_from_leaves(self, simulator, physical_join_plan):
        result = simulator.run_job(physical_join_plan, job_id="j")
        leaves = [op for op in physical_join_plan.walk() if not op.children]
        expected = sum(leaf.true_card * leaf.row_bytes for leaf in leaves)
        assert result.record.input_bytes == pytest.approx(expected)

    def test_features_use_estimates(self, simulator, physical_simple_plan, estimator):
        result = simulator.run_job(physical_simple_plan, job_id="j", estimator=estimator)
        for op, record in zip(physical_simple_plan.walk(), result.record.operators):
            assert record.features.output_card == pytest.approx(estimator.estimate(op))


class TestRunLog:
    def _log_with(self, simulator, plan) -> RunLog:
        log = RunLog()
        for day in (1, 2):
            for i in range(3):
                result = simulator.run_job(
                    plan, job_id=f"d{day}i{i}", day=day, is_adhoc=(i == 2)
                )
                log.append(result.record)
        return log

    def test_filter_by_day(self, simulator, physical_simple_plan):
        log = self._log_with(simulator, physical_simple_plan)
        assert len(log.filter(days=[1])) == 3
        assert log.filter(days=[1]).days == [1]

    def test_filter_by_adhoc(self, simulator, physical_simple_plan):
        log = self._log_with(simulator, physical_simple_plan)
        assert len(log.filter(adhoc=True)) == 2
        assert len(log.filter(adhoc=False)) == 4

    def test_operator_records_count(self, simulator, physical_simple_plan):
        log = self._log_with(simulator, physical_simple_plan)
        assert log.operator_count == 6 * physical_simple_plan.node_count

    def test_filters_compose(self, simulator, physical_simple_plan):
        log = self._log_with(simulator, physical_simple_plan)
        assert len(log.filter(days=[2], adhoc=True)) == 1

    def test_clusters_listing(self, simulator, physical_simple_plan):
        log = self._log_with(simulator, physical_simple_plan)
        assert log.clusters == [simulator.cluster.name]
