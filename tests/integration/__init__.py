"""Test package (unique import paths for duplicate basenames)."""
