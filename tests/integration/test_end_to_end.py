"""End-to-end integration tests: the full Cleo loop at tiny scale.

generate -> plan (default) -> simulate -> train -> re-plan (Cleo) ->
simulate again, asserting the paper's headline outcomes hold directionally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.common.stats import pearson
from repro.core.cost_model import CleoCostModel
from repro.core.robustness import evaluate_predictor_on_log
from repro.cost.default_model import DefaultCostModel
from repro.optimizer.partition import AnalyticalStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.plan.physical import validate_physical_plan
from repro.workload.templates import instantiate


class TestLearnedBeatsDefault:
    def test_correlation_gap(self, tiny_bundle, tiny_predictor):
        """The paper's core claim: learned >> default correlation."""
        test = tiny_bundle.test_log()
        learned = evaluate_predictor_on_log(tiny_predictor, test)

        costs, actuals = tiny_bundle.baseline_costs(DefaultCostModel())
        default_corr = pearson(costs, actuals)
        assert learned.pearson > default_corr + 0.2
        assert learned.pearson > 0.5

    def test_accuracy_gap(self, tiny_bundle, tiny_predictor):
        from repro.common.stats import median_error_pct

        test = tiny_bundle.test_log()
        learned = evaluate_predictor_on_log(tiny_predictor, test)
        costs, actuals = tiny_bundle.baseline_costs(DefaultCostModel())
        default_err = median_error_pct(costs, actuals)
        assert learned.median_error_pct < default_err / 2


class TestResourceAwareReplanning:
    @pytest.fixture(scope="class")
    def replanned(self, tiny_bundle, tiny_predictor):
        estimator = CardinalityEstimator(tiny_bundle.runner.estimator_config)
        cleo_planner = QueryPlanner(
            CleoCostModel(tiny_predictor),
            estimator,
            PlannerConfig(partition_strategy=AnalyticalStrategy()),
        )
        base_planner = tiny_bundle.runner._planner
        simulator = tiny_bundle.runner.simulator
        catalog = tiny_bundle.generator.catalog_for_day(3)
        outcomes = []
        for job in tiny_bundle.generator.jobs_for_day(3)[:15]:
            logical = instantiate(job, catalog)
            base_planner.jitter_salt = job.job_id
            default_plan = base_planner.plan(logical).plan
            cleo_plan = cleo_planner.plan(logical).plan
            validate_physical_plan(cleo_plan)
            outcomes.append(
                {
                    "default_latency": simulator.expected_job_latency(default_plan),
                    "cleo_latency": simulator.expected_job_latency(cleo_plan),
                    "default_cpu": simulator.expected_cpu_seconds(default_plan),
                    "cleo_cpu": simulator.expected_cpu_seconds(cleo_plan),
                }
            )
        return outcomes

    def test_majority_of_jobs_improve(self, replanned):
        improved = sum(
            1 for o in replanned if o["cleo_latency"] < o["default_latency"]
        )
        assert improved >= len(replanned) * 0.5

    def test_cumulative_latency_improves(self, replanned):
        total_default = sum(o["default_latency"] for o in replanned)
        total_cleo = sum(o["cleo_latency"] for o in replanned)
        assert total_cleo < total_default

    def test_cumulative_cpu_does_not_regress(self, replanned):
        # At tiny training scale the CPU savings are weaker than the paper's
        # -32%; the invariant is that latency wins never come from a large
        # resource blow-up.
        total_default = sum(o["default_cpu"] for o in replanned)
        total_cleo = sum(o["cleo_cpu"] for o in replanned)
        assert total_cleo < total_default * 1.15


class TestRetraining:
    def test_predictor_retrains_on_new_days(self, tiny_bundle):
        """The feedback loop: retraining must not degrade on fresh data."""
        first = tiny_bundle.predictor(train_days=(1,), combined_days=(2,))
        q_first = evaluate_predictor_on_log(first, tiny_bundle.test_log())
        second = tiny_bundle.predictor(train_days=(1, 2), combined_days=(2,))
        q_second = evaluate_predictor_on_log(second, tiny_bundle.test_log())
        # More training data should not make the median error much worse.
        assert q_second.median_error_pct <= q_first.median_error_pct * 1.5

    def test_model_counts_grow_with_data(self, tiny_bundle):
        one_day = tiny_bundle.predictor(train_days=(1,), combined_days=(2,))
        count_one = one_day.model_count
        two_days = tiny_bundle.predictor(train_days=(1, 2), combined_days=(2,))
        assert two_days.model_count >= count_one


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        from repro.execution.hardware import ClusterSpec
        from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
        from repro.workload.runner import WorkloadRunner

        def build():
            config = ClusterWorkloadConfig(
                cluster_name="detcheck", n_tables=4, n_fragments=5, n_templates=6, seed=11
            )
            generator = WorkloadGenerator(config)
            runner = WorkloadRunner(cluster=ClusterSpec(name="detcheck"), seed=11)
            log = runner.run_days(generator, [1])
            return [
                (job.job_id, round(job.latency_seconds, 9), len(job.operators))
                for job in log
            ]

        assert build() == build()
