"""Smoke tests: every example script runs end to end.

The examples double as executable documentation; a refactor that breaks
one breaks the README's promises.  Each example is loaded from its file
and its ``main()`` run in-process with stdout captured.  The slowest
examples (multi-week workloads) are excluded from the default run and
covered by the benchmark suite's equivalent experiments instead.
"""

from __future__ import annotations

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"

#: Examples safe to run inside the unit-test budget (seconds, not minutes).
FAST_EXAMPLES = (
    "quickstart",
    "plan_debugging",
    "cardinality_study",
    "applications_tour",
    "tpch_case_study",
)

#: Multi-week-workload examples: still asserted importable + well-formed.
SLOW_EXAMPLES = ("resource_optimization", "robustness_study", "feedback_loop")


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/pickling inside the example resolve the module.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output.splitlines()) >= 3, f"{name} produced almost no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_is_well_formed(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None)), f"{name} lacks a main()"


def test_every_example_is_listed():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
