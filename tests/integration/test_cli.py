"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import _experiment_registry, build_parser, main

#: Small workload so CLI tests stay in the seconds range.
SMALL = ["--tables", "6", "--fragments", "8", "--templates", "10"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workload_defaults(self):
        args = build_parser().parse_args(["workload"])
        assert args.cluster == "cluster1"
        assert args.days == 3
        assert args.seed == 0

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "tab5", "--scale", "huge"])


class TestWorkloadCommand:
    def test_prints_profile(self, capsys):
        code = main(["workload", "--days", "2", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "recurring jobs" in out
        assert "common subexpressions" in out

    def test_deterministic_across_runs(self, capsys):
        main(["workload", "--days", "2", *SMALL])
        first = capsys.readouterr().out
        main(["workload", "--days", "2", *SMALL])
        second = capsys.readouterr().out
        assert first == second


class TestTrainEvaluateRoundTrip:
    def test_train_writes_model_file(self, tmp_path, capsys):
        model_path = tmp_path / "models.json"
        code = main(["train", "--days", "3", *SMALL, "--out", str(model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert model_path.exists()
        assert "trained" in out
        payload = json.loads(model_path.read_text())
        assert "models" in payload and "combined" in payload

    def test_evaluate_loads_and_scores(self, tmp_path, capsys):
        model_path = tmp_path / "models.json"
        main(["train", "--days", "3", *SMALL, "--out", str(model_path)])
        capsys.readouterr()
        code = main(["evaluate", "--model", str(model_path), *SMALL, "--day", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "combined" in out
        assert "op_subgraph" in out

    def test_train_rejects_too_few_days(self, tmp_path, capsys):
        code = main(["train", "--days", "2", *SMALL, "--out", str(tmp_path / "m.json")])
        assert code == 2


class TestPredictCommand:
    def test_serves_batched_predictions_with_stats(self, tmp_path, capsys):
        model_path = tmp_path / "models.json"
        main(["train", "--days", "3", *SMALL, "--out", str(model_path)])
        capsys.readouterr()
        code = main(["predict", "--model", str(model_path), *SMALL, "--day", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "vectorized model calls" in out
        assert "prediction cache" in out
        assert "median error" in out

    def test_explains_operator_predictions(self, tmp_path, capsys):
        model_path = tmp_path / "models.json"
        main(["train", "--days", "3", *SMALL, "--out", str(model_path)])
        capsys.readouterr()
        code = main(
            ["predict", "--model", str(model_path), *SMALL, "--day", "3",
             "--explain", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "operators explained" in out
        assert "combined" in out


class TestBenchCommands:
    def test_bench_plan_defaults(self):
        args = build_parser().parse_args(["bench-plan"])
        assert args.scale == "small"
        assert args.repeats == 5
        assert args.out == "BENCH_plan.json"

    def test_bench_replan_defaults(self):
        args = build_parser().parse_args(["bench-replan"])
        assert args.scale == "small"
        assert args.instances == 4
        assert args.out == "BENCH_replan.json"

    def test_bench_replan_writes_parity_checked_result(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_replan.json"
        code = main(
            ["bench-replan", "--scale", "tiny", "--repeats", "1",
             "--instances", "2", "--out", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replan_throughput" in out
        payload = json.loads(out_path.read_text())
        assert payload["plans_bitwise_identical"] is True
        assert payload["lookup_accounting_identical"] is True
        assert payload["workload"]["instances_per_job"] == 2


class TestExperimentCommand:
    def test_list_covers_every_paper_artifact(self, capsys):
        code = main(["experiment", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        for artifact in ("fig1", "fig14", "fig20", "tab5", "tab8", "ablation_window"):
            assert artifact in out

    def test_registry_ids_are_unique_and_runnable_signatures(self):
        registry = _experiment_registry()
        assert len(registry) == 32  # 25 paper artifacts + 6 ablations + 1 extension
        for runner in registry.values():
            assert callable(runner)

    def test_missing_id_lists_and_fails(self, capsys):
        code = main(["experiment"])
        out = capsys.readouterr().out
        assert code == 2
        assert "available experiment ids" in out

    def test_unknown_id_fails(self, capsys):
        code = main(["experiment", "nonexistent"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown experiment" in err

    def test_runs_a_cheap_experiment(self, capsys):
        code = main(["experiment", "tab2_3", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tab2_3" in out
