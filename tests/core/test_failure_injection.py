"""Failure-injection tests: corrupted logs, degenerate workloads, extremes.

Production feedback loops ingest whatever the cluster logged — including
days dominated by stragglers, machine failures, or telemetry bugs.  These
tests corrupt the training data in controlled ways and assert the pipeline
degrades gracefully instead of exploding.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ModelKind
from repro.core.learned_model import ResourceProfile
from repro.core.predictor import CleoPredictor
from repro.core.regression_control import ModelQuarantine
from repro.core.robustness import evaluate_predictor_on_log
from repro.core.trainer import CleoTrainer
from repro.execution.runtime_log import JobRecord, RunLog
from repro.features.featurizer import FeatureInput


def corrupt_log(log: RunLog, factor: float, every: int = 1) -> RunLog:
    """A copy of ``log`` with every ``every``-th operator label scaled."""
    corrupted = RunLog()
    for job in log:
        operators = tuple(
            dataclasses.replace(record, actual_latency=record.actual_latency * factor)
            if i % every == 0
            else record
            for i, record in enumerate(job.operators)
        )
        corrupted.append(dataclasses.replace(job, operators=operators))
    return corrupted


class TestCorruptedLabels:
    def test_outlier_labels_survive_training(self, tiny_bundle):
        """100x outliers on 1 in 5 labels: training completes, errors bounded.

        The MSLE loss (Section 3.2) was chosen exactly because big data logs
        contain large label outliers from stragglers and failures.
        """
        poisoned = corrupt_log(tiny_bundle.log.filter(days=[1, 2]), 100.0, every=5)
        predictor = CleoTrainer().train(
            poisoned, individual_days=[1, 2], combined_days=[2]
        )
        clean_test = tiny_bundle.test_log()
        quality = evaluate_predictor_on_log(predictor, clean_test)
        assert math.isfinite(quality.median_error_pct)
        # Degraded, but still far from the default model's ~200%+ regime.
        assert quality.median_error_pct < 150.0

    def test_quarantine_removes_models_trained_on_garbage(self, tiny_bundle):
        """A uniformly 50x-inflated training day produces models the
        quarantine pass then removes against honest data."""
        poisoned = corrupt_log(tiny_bundle.log.filter(days=[1, 2]), 50.0)
        predictor = CleoTrainer().train(
            poisoned, individual_days=[1, 2], combined_days=[2]
        )
        before = predictor.store.count()
        report = ModelQuarantine(tolerance_factor=4.0).audit_predictor(
            predictor, tiny_bundle.test_log()
        )
        assert report.total_removed > before * 0.5
        assert predictor.store.count() == before - report.total_removed

    def test_honest_models_pass_quarantine(self, tiny_bundle, tiny_predictor):
        import copy

        store_copy = copy.deepcopy(tiny_predictor.store)
        report = ModelQuarantine(tolerance_factor=4.0).audit(
            store_copy, tiny_bundle.test_log()
        )
        assert report.total_removed <= store_copy.count() * 0.05


class TestDegenerateWorkloads:
    def test_single_day_log_still_trains(self, tiny_bundle):
        one_day = tiny_bundle.log.filter(days=[1])
        predictor = CleoTrainer().train(one_day)
        quality = evaluate_predictor_on_log(predictor, tiny_bundle.test_log())
        assert math.isfinite(quality.median_error_pct)

    def test_single_job_log_trains_operator_models_only(self, tiny_bundle):
        job = next(iter(tiny_bundle.log))
        log = RunLog()
        log.append(job)
        predictor = CleoTrainer().train(log)
        # One job cannot hit the 5-occurrence threshold for most strict
        # subgraph templates, but repeated operators may qualify.
        assert predictor.store.count(ModelKind.OP_SUBGRAPH) <= predictor.store.count(
            ModelKind.OPERATOR
        ) + len(job.operators)
        for record in job.operators:
            assert math.isfinite(predictor.predict_record(record))

    def test_empty_store_predictor_uses_fallback(self, tiny_bundle):
        from repro.core.model_store import ModelStore

        predictor = CleoPredictor(store=ModelStore(), fallback_cost=7.5)
        record = next(tiny_bundle.log.operator_records())
        assert predictor.predict_record(record) == 7.5


class TestExtremeFeatures:
    @given(
        card=st.floats(min_value=0.0, max_value=1e15, allow_nan=False),
        partitions=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_predictions_finite_on_extreme_features(
        self, tiny_bundle, tiny_predictor, card, partitions
    ):
        """Inputs far outside the training range never break a prediction."""
        record = next(tiny_bundle.log.operator_records())
        features = FeatureInput(
            input_card=card,
            base_card=card,
            output_card=card,
            avg_row_bytes=64.0,
            partition_count=float(partitions),
        )
        value = tiny_predictor.predict(features, record.signatures)
        assert math.isfinite(value)
        assert value >= 0.0


class TestResourceProfileProperties:
    @given(
        theta_p=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        theta_c=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        theta_0=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        probe=st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=100, deadline=None)
    def test_optimum_never_beaten_by_probe(self, theta_p, theta_c, theta_0, probe):
        """The three-sign-case optimum is at least as cheap as any probe."""
        profile = ResourceProfile(theta_p=theta_p, theta_c=theta_c, theta_0=theta_0)
        chosen = profile.optimal_partitions(3000)
        assert 1 <= chosen <= 3000
        assert profile.cost_at(chosen) <= profile.cost_at(probe) + 1e-6 * max(
            1.0, abs(profile.cost_at(probe))
        )

    @given(
        theta_p=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        theta_c=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_interior_optimum_matches_calculus(self, theta_p, theta_c):
        """Positive thetas: optimum ~ sqrt(theta_p / theta_c), clamped."""
        profile = ResourceProfile(theta_p=theta_p, theta_c=theta_c, theta_0=0.0)
        chosen = profile.optimal_partitions(3000)
        stationary = math.sqrt(theta_p / theta_c)
        assert chosen == min(3000, max(1, round(stationary))) or profile.cost_at(
            chosen
        ) <= profile.cost_at(min(3000, max(1, round(stationary))))
