"""Batched Section-5.3 resource profiles vs the per-model scalar path.

``resource_profiles_most_specific`` replays each packed model's raw-space
coefficients into ``(theta_p, theta_c, theta_0)`` with the same reduction
order as ``LearnedCostModel.resource_profile``, so the analytical partition
strategy prices whole stages through the packed bank **bitwise identically**
to the per-operator loop — including the 5-lookups-per-covered-row
accounting the paper's Figure 8c tracks.
"""

from __future__ import annotations

import pytest

from repro.core.config import SPECIFICITY_ORDER
from repro.core.packed import resource_profiles_most_specific
from repro.core.predictor import CleoPredictor
from repro.serving import CleoService, PredictionRequest


@pytest.fixture(scope="module")
def rows(tiny_bundle):
    records = list(tiny_bundle.log.operator_records())[:400]
    requests = [PredictionRequest.for_record(r) for r in records]
    return [r.features for r in requests], [r.signatures for r in requests]


def _scalar_profiles(store, inputs, bundles):
    """The retained reference: most-specific model, per-operator method."""
    profiles = []
    for features, signatures in zip(inputs, bundles):
        profile = None
        for kind in SPECIFICITY_ORDER:
            model = store.lookup(kind, signatures)
            if model is not None:
                profile = model.resource_profile(features)
                break
        profiles.append(profile)
    return profiles


class TestBatchedResourceProfiles:
    def test_bitwise_identical_to_per_model_path(self, tiny_predictor, rows):
        inputs, bundles = rows
        batched, n_covered = resource_profiles_most_specific(
            tiny_predictor.store, inputs, bundles
        )
        scalar = _scalar_profiles(tiny_predictor.store, inputs, bundles)
        assert len(batched) == len(scalar) == len(inputs)
        for ours, theirs in zip(batched, scalar):
            if theirs is None:
                assert ours is None
            else:
                # Exact float equality: same reduction order, bit for bit.
                assert (ours.theta_p, ours.theta_c, ours.theta_0) == (
                    theirs.theta_p,
                    theirs.theta_c,
                    theirs.theta_0,
                )
        assert n_covered == sum(1 for p in scalar if p is not None)
        assert n_covered > 0, "tiny bundle should cover some operators"

    def test_service_charges_five_lookups_per_covered_row(
        self, tiny_predictor, rows
    ):
        inputs, bundles = rows
        service = CleoService(
            CleoPredictor(
                store=tiny_predictor.store,
                combined=tiny_predictor.combined,
                fallback_cost=tiny_predictor.fallback_cost,
            )
        )
        before = service.predictor.lookup_count
        profiles = service.resource_profiles(inputs, bundles)
        covered = sum(1 for p in profiles if p is not None)
        assert covered > 0
        assert (
            service.predictor.lookup_count - before
            == covered * CleoPredictor.LOOKUPS_PER_PREDICTION
        )

    def test_cost_model_routes_batched(self, tiny_bundle, tiny_predictor):
        """CleoCostModel.resource_profiles == per-op resource_profile calls."""
        from repro.core.cost_model import CleoCostModel

        estimator = tiny_bundle.fresh_estimator()
        root = next(iter(tiny_bundle.runner.plans.values()))
        ops = list(root.walk())
        batched_model = CleoCostModel(tiny_predictor)
        scalar_model = CleoCostModel(tiny_predictor, batched=False)
        assert batched_model.supports_batched_pricing
        batched = batched_model.resource_profiles(ops, estimator)
        scalar = [scalar_model.resource_profile(op, estimator) for op in ops]
        assert batched == scalar
