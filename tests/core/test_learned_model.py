"""Tests for LearnedCostModel and the resource profile extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learned_model import LearnedCostModel, ResourceProfile
from repro.features.featurizer import FeatureInput


def _synthetic_samples(n=60, seed=0, theta_p=5000.0, theta_c=0.2):
    """Samples whose true cost is exactly theta_p-style: A/P + C*P + const."""
    rng = np.random.default_rng(seed)
    inputs, costs = [], []
    for _ in range(n):
        rows = float(rng.uniform(1e5, 2e6))
        partitions = float(rng.integers(2, 300))
        f = FeatureInput(
            input_card=rows,
            base_card=rows,
            output_card=rows * 0.1,
            avg_row_bytes=100.0,
            partition_count=partitions,
        )
        cost = theta_p * (rows / 1e6) / partitions + theta_c * partitions + 3.0
        cost *= float(np.exp(rng.normal(0, 0.05)))
        inputs.append(f)
        costs.append(cost)
    return inputs, np.asarray(costs)


class TestFitAndPredict:
    def test_fit_predict_accuracy(self):
        inputs, costs = _synthetic_samples()
        model = LearnedCostModel(include_context=False).fit(inputs, costs)
        preds = model.predict_many(inputs)
        ratio = preds / costs
        assert float(np.median(np.abs(ratio - 1))) < 0.3

    def test_predictions_nonnegative_and_bounded(self):
        inputs, costs = _synthetic_samples()
        model = LearnedCostModel(include_context=False).fit(inputs, costs)
        extreme = inputs[0].with_partition_count(1.0)
        value = model.predict_one(extreme)
        assert 0.0 <= value <= 1e7

    def test_alignment_validation(self):
        inputs, costs = _synthetic_samples(n=10)
        with pytest.raises(ValueError):
            LearnedCostModel(include_context=False).fit(inputs, costs[:5])

    def test_context_models_use_more_features(self):
        inputs, costs = _synthetic_samples(n=30)
        with_ctx = LearnedCostModel(include_context=True).fit(inputs, costs)
        without = LearnedCostModel(include_context=False).fit(inputs, costs)
        assert len(with_ctx.feature_weights()) == len(without.feature_weights()) + 2

    def test_is_fitted_flag(self):
        model = LearnedCostModel(include_context=False)
        assert not model.is_fitted
        inputs, costs = _synthetic_samples(n=10)
        model.fit(inputs, costs)
        assert model.is_fitted

    def test_memory_bytes_small(self):
        model = LearnedCostModel(include_context=False)
        assert model.memory_bytes < 1024  # linear models are tiny


class TestResourceProfile:
    def test_profile_cost_matches_prediction_shape(self):
        """The theta decomposition must reproduce the model's own P-sweep."""
        inputs, costs = _synthetic_samples()
        model = LearnedCostModel(include_context=False).fit(inputs, costs)
        f = inputs[0]
        profile = model.resource_profile(f)
        for p in (1, 4, 32, 128, 1024):
            direct = model.predict_one(f.with_partition_count(float(p)))
            via_profile = max(profile.cost_at(p), 0.0)
            assert via_profile == pytest.approx(direct, rel=1e-6, abs=1e-6)

    def test_thetas_nonnegative_under_constraint(self):
        inputs, costs = _synthetic_samples()
        model = LearnedCostModel(include_context=False).fit(inputs, costs)
        profile = model.resource_profile(inputs[0])
        assert profile.theta_p >= 0.0
        assert profile.theta_c >= 0.0

    def test_optimal_partitions_against_brute_force(self):
        inputs, costs = _synthetic_samples()
        model = LearnedCostModel(include_context=False).fit(inputs, costs)
        profile = model.resource_profile(inputs[0])
        chosen = profile.optimal_partitions(3000)
        brute = min(range(1, 3001), key=profile.cost_at)
        assert profile.cost_at(chosen) == pytest.approx(profile.cost_at(brute), rel=1e-6)


class TestResourceProfileMath:
    def test_interior_optimum(self):
        profile = ResourceProfile(theta_p=100.0, theta_c=1.0, theta_0=0.0)
        assert profile.optimal_partitions(3000) == 10

    def test_max_when_overhead_negative(self):
        profile = ResourceProfile(theta_p=100.0, theta_c=-0.001, theta_0=0.0)
        assert profile.optimal_partitions(500) == 500

    def test_min_when_work_negative(self):
        profile = ResourceProfile(theta_p=-10.0, theta_c=1.0, theta_0=0.0)
        assert profile.optimal_partitions(500) == 1

    def test_clamped_to_max(self):
        profile = ResourceProfile(theta_p=1e9, theta_c=0.001, theta_0=0.0)
        assert profile.optimal_partitions(100) == 100

    def test_cost_at_validates(self):
        with pytest.raises(ValueError):
            ResourceProfile(1, 1, 0).cost_at(0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=-1e4, max_value=1e6),
        st.floats(min_value=-10, max_value=10),
        st.integers(min_value=1, max_value=3000),
    )
    def test_choice_never_worse_than_endpoints(self, theta_p, theta_c, max_p):
        profile = ResourceProfile(theta_p, theta_c, 0.0)
        chosen = profile.optimal_partitions(max_p)
        assert 1 <= chosen <= max_p
        assert profile.cost_at(chosen) <= profile.cost_at(1) + 1e-9
        assert profile.cost_at(chosen) <= profile.cost_at(max_p) + 1e-9
