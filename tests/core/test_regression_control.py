"""Tests for the Section 6.7 regression-avoidance extensions."""

from __future__ import annotations

import pytest

from repro.cardinality.estimator import CardinalityEstimator
from repro.core.config import ModelKind
from repro.core.cost_model import CleoCostModel
from repro.core.regression_control import DualPlanner, ModelQuarantine
from repro.cost.default_model import DefaultCostModel
from repro.cost.interface import plan_cost
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.workload.templates import instantiate


class TestDualPlanner:
    @pytest.fixture()
    def dual(self, tiny_bundle, tiny_predictor):
        estimator = CardinalityEstimator(tiny_bundle.runner.estimator_config)
        judge = CleoCostModel(tiny_predictor)
        cleo_planner = QueryPlanner(judge, estimator, PlannerConfig())
        default_planner = QueryPlanner(DefaultCostModel(), estimator, PlannerConfig())
        return DualPlanner(default_planner, cleo_planner, judge, estimator)

    def test_chooses_judged_cheaper_plan(self, dual, tiny_bundle):
        catalog = tiny_bundle.generator.catalog_for_day(3)
        job = tiny_bundle.generator.jobs_for_day(3)[0]
        outcome = dual.plan(instantiate(job, catalog))
        default_cost = plan_cost(dual.judge, outcome.default_plan.plan, dual.estimator)
        cleo_cost = plan_cost(dual.judge, outcome.cleo_plan.plan, dual.estimator)
        chosen_cost = plan_cost(dual.judge, outcome.chosen.plan, dual.estimator)
        assert chosen_cost == pytest.approx(min(default_cost, cleo_cost), rel=1e-6)

    def test_flag_matches_choice(self, dual, tiny_bundle):
        catalog = tiny_bundle.generator.catalog_for_day(3)
        for job in tiny_bundle.generator.jobs_for_day(3)[:3]:
            outcome = dual.plan(instantiate(job, catalog))
            expected = outcome.cleo_plan if outcome.used_cleo else outcome.default_plan
            assert outcome.chosen is expected


class TestModelQuarantine:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModelQuarantine(tolerance_factor=0.5)

    def test_accurate_models_survive(self, tiny_bundle):
        import copy

        # Audits mutate the store; work on a copy of the shared fixture.
        store = copy.deepcopy(tiny_bundle.predictor().store)
        before = store.count()
        report = ModelQuarantine(tolerance_factor=50.0).audit(
            store, tiny_bundle.test_log()
        )
        # Hardly anything should be off by 50x.
        assert report.total_removed <= before * 0.05

    def test_broken_model_is_removed(self, tiny_bundle):
        import copy

        import numpy as np

        from repro.core.learned_model import LearnedCostModel
        from repro.core.model_store import signature_for

        store = copy.deepcopy(tiny_bundle.predictor().store)
        record = next(tiny_bundle.test_log().operator_records())
        signature = signature_for(ModelKind.OP_SUBGRAPH, record.signatures)

        # Plant a model trained to a wildly wrong constant.
        broken = LearnedCostModel(include_context=False)
        broken.fit(
            [record.features] * 6,
            np.full(6, record.actual_latency * 1e4 + 1e3),
        )
        store.add(ModelKind.OP_SUBGRAPH, signature, broken)

        report = ModelQuarantine(tolerance_factor=10.0, min_observations=1).audit(
            store, tiny_bundle.test_log()
        )
        assert report.removed.get(ModelKind.OP_SUBGRAPH, 0) >= 1
        assert store.get(ModelKind.OP_SUBGRAPH, signature) is None

    def test_report_counts(self, tiny_bundle):
        predictor = tiny_bundle.predictor()
        report = ModelQuarantine().audit(predictor.store, tiny_bundle.test_log())
        assert report.inspected == tiny_bundle.test_log().operator_count

    def test_audit_second_pass_is_idempotent(self, tiny_bundle):
        """Once the offenders are gone, a re-audit removes nothing more."""
        import copy

        import numpy as np

        from repro.core.learned_model import LearnedCostModel
        from repro.core.model_store import signature_for

        store = copy.deepcopy(tiny_bundle.predictor().store)
        record = next(tiny_bundle.test_log().operator_records())
        signature = signature_for(ModelKind.OP_SUBGRAPH, record.signatures)
        broken = LearnedCostModel(include_context=False)
        broken.fit(
            [record.features] * 6,
            np.full(6, record.actual_latency * 1e4 + 1e3),
        )
        store.add(ModelKind.OP_SUBGRAPH, signature, broken)

        quarantine = ModelQuarantine(tolerance_factor=10.0, min_observations=1)
        first = quarantine.audit(store, tiny_bundle.test_log())
        assert first.total_removed >= 1
        second = quarantine.audit(store, tiny_bundle.test_log())
        assert second.total_removed == 0
        assert second.inspected == first.inspected

    def test_boundary_quarantine_is_idempotent(self, tiny_bundle):
        """The serving-boundary entry removes once and reports repeats."""
        import copy

        from repro.core.model_store import signature_for

        store = copy.deepcopy(tiny_bundle.predictor().store)
        record = next(tiny_bundle.test_log().operator_records())
        kind, _ = store.most_specific(record.signatures)
        signature = signature_for(kind, record.signatures)
        before = store.count()

        quarantine = ModelQuarantine()
        assert quarantine.quarantine(store, kind, signature) is True
        assert store.get(kind, signature) is None
        assert store.count() == before - 1
        # Second pass: the model is already gone, nothing double-counts.
        assert quarantine.quarantine(store, kind, signature) is False
        assert store.count() == before - 1


class TestQuarantineLedger:
    def test_audit_records_removals_in_ledger(self, tiny_bundle):
        import copy

        import numpy as np

        from repro.core.learned_model import LearnedCostModel
        from repro.core.model_store import signature_for

        store = copy.deepcopy(tiny_bundle.predictor().store)
        record = next(tiny_bundle.test_log().operator_records())
        signature = signature_for(ModelKind.OP_SUBGRAPH, record.signatures)
        broken = LearnedCostModel(include_context=False)
        broken.fit(
            [record.features] * 6,
            np.full(6, record.actual_latency * 1e4 + 1e3),
        )
        store.add(ModelKind.OP_SUBGRAPH, signature, broken)

        quarantine = ModelQuarantine(tolerance_factor=10.0, min_observations=1)
        quarantine.audit(store, tiny_bundle.test_log())
        assert (ModelKind.OP_SUBGRAPH, signature) in quarantine.ledger()

    def test_replay_reapplies_to_reloaded_store(self, tiny_bundle):
        """A retrained model re-adding a ledgered signature is dropped again."""
        import copy

        store = copy.deepcopy(tiny_bundle.predictor().store)
        signature = next(iter(store.models[ModelKind.OP_SUBGRAPH]))
        quarantine = ModelQuarantine()
        quarantine.record(ModelKind.OP_SUBGRAPH, signature)

        assert quarantine.replay(store) == 1
        assert quarantine.replay(store) == 0
        # "Retrain" re-adds the signature: replay drops it again.
        fresh = copy.deepcopy(tiny_bundle.predictor().store)
        assert quarantine.replay(fresh) == 1
        quarantine.clear_ledger()
        assert quarantine.ledger() == ()
        assert quarantine.replay(copy.deepcopy(store)) == 0

    def test_record_is_idempotent_and_ordered(self):
        quarantine = ModelQuarantine()
        quarantine.record(ModelKind.OPERATOR, 7)
        quarantine.record(ModelKind.OP_SUBGRAPH, 3)
        quarantine.record(ModelKind.OPERATOR, 7)
        assert quarantine.ledger() == (
            (ModelKind.OPERATOR, 7),
            (ModelKind.OP_SUBGRAPH, 3),
        )
