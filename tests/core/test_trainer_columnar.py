"""Columnar trainer parity: the fast path must match the scalar reference.

``CleoTrainer.train`` (columnar: table grouping, batched elastic nets,
bulk meta rows) and ``CleoTrainer.train_reference`` (per-record scalar
loops) must produce bitwise-identical models and predictions — this is the
pin that lets the hot path evolve without silently changing results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined import build_meta_matrix, build_meta_row
from repro.core.config import CleoConfig, ModelKind
from repro.core.trainer import CleoTrainer
from repro.ml.proximal import ElasticNetMSLE, fit_elastic_nets


@pytest.fixture(scope="module")
def parity_predictors(tiny_bundle):
    trainer = CleoTrainer(CleoConfig())
    columnar = trainer.train(tiny_bundle.log)
    reference = trainer.train_reference(tiny_bundle.log)
    return columnar, reference


class TestTrainerParity:
    def test_same_model_inventory(self, parity_predictors):
        columnar, reference = parity_predictors
        for kind in ModelKind:
            assert set(columnar.store.models[kind]) == set(reference.store.models[kind])

    def test_individual_coefficients_bitwise_identical(self, parity_predictors):
        columnar, reference = parity_predictors
        for kind in ModelKind:
            for signature, model in columnar.store.models[kind].items():
                twin = reference.store.models[kind][signature]
                assert model.n_samples == twin.n_samples
                assert np.array_equal(model._net.coef_, twin._net.coef_)
                assert model._net.intercept_ == twin._net.intercept_

    def test_predictions_bitwise_identical(self, tiny_bundle, parity_predictors):
        columnar, reference = parity_predictors
        records = list(tiny_bundle.test_log().operator_records())
        batched = columnar.predict_records(records)
        scalar = np.array([reference.predict_record(r) for r in records])
        assert np.array_equal(batched, scalar)

    def test_train_raises_on_empty_log(self):
        from repro.execution.runtime_log import RunLog

        trainer = CleoTrainer()
        with pytest.raises(ValueError):
            trainer.train_combined(trainer.train_individual(RunLog()), RunLog())


class TestStageReferences:
    """Per-stage references must stay exercised (reference-parity lint rule).

    ``train_reference`` covers the end-to-end path; these pin the two
    stage-level references bitwise against their batched twins so neither
    can rot unnoticed.
    """

    def test_train_individual_reference_bitwise(self, tiny_bundle):
        trainer = CleoTrainer(CleoConfig())
        fast = trainer.train_individual(tiny_bundle.log)
        slow = trainer.train_individual_reference(tiny_bundle.log)
        assert fast.count() == slow.count() > 0
        for kind in ModelKind:
            assert set(fast.models[kind]) == set(slow.models[kind])
            for signature, model in fast.models[kind].items():
                twin = slow.models[kind][signature]
                assert np.array_equal(model._net.coef_, twin._net.coef_)
                assert model._net.intercept_ == twin._net.intercept_

    def test_train_combined_reference_bitwise(self, tiny_bundle):
        trainer = CleoTrainer(CleoConfig())
        store = trainer.train_individual(tiny_bundle.log)
        fast = trainer.train_combined(store, tiny_bundle.log)
        slow = trainer.train_combined_reference(store, tiny_bundle.log)
        table = tiny_bundle.test_log().to_table()
        rows = build_meta_matrix(store, table)
        assert np.array_equal(fast.predict_rows(rows), slow.predict_rows(rows))


class TestMetaMatrix:
    def test_matches_scalar_meta_rows(self, tiny_bundle, parity_predictors):
        columnar, _ = parity_predictors
        log = tiny_bundle.test_log()
        table = log.to_table()
        matrix = build_meta_matrix(columnar.store, table)
        records = list(log.operator_records())
        for i in range(0, len(records), max(1, len(records) // 25)):
            row = build_meta_row(
                columnar.store, records[i].features, records[i].signatures
            )
            assert np.array_equal(matrix[i], row)

    def test_model_call_accounting(self, tiny_bundle, parity_predictors):
        columnar, _ = parity_predictors
        table = tiny_bundle.test_log().to_table()
        calls = 0

        def count() -> None:
            nonlocal calls
            calls += 1

        build_meta_matrix(columnar.store, table, on_model_call=count)
        # One vectorized call per covering (kind, signature) group; never
        # more than one per model nor per (kind, record).
        assert 0 < calls <= columnar.store.count()


class TestBatchedElasticNet:
    def test_batched_fit_bitwise_equals_individual_fits(self):
        rng = np.random.default_rng(7)
        sizes = [5, 23, 8, 147, 64]
        matrices = [np.exp(rng.normal(0, 4, size=(n, 6))) for n in sizes]
        targets = [np.exp(rng.normal(2, 1, size=n)) for n in sizes]

        def make_net() -> ElasticNetMSLE:
            return ElasticNetMSLE(alpha=0.01, max_iter=120, tol=1e-5, nonneg_indices=(2,))

        solo = [make_net().fit(x, y) for x, y in zip(matrices, targets)]
        batched = [make_net() for _ in sizes]
        lengths = np.array(sizes)
        starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        fit_elastic_nets(
            batched, np.vstack(matrices), np.concatenate(targets), starts, lengths
        )
        for one, many in zip(solo, batched):
            assert np.array_equal(one.coef_, many.coef_)
            assert one.intercept_ == many.intercept_
            assert one.n_iter_ == many.n_iter_

    def test_batched_fit_with_gapped_starts(self):
        # The segment contract is "net g owns rows starts[g]:starts[g]+
        # lengths[g]" — gaps between segments (skipped rows) are legal and
        # must not shift any net's training data.
        rng = np.random.default_rng(11)
        x = np.exp(rng.normal(0, 3, size=(100, 4)))
        y = np.exp(rng.normal(1, 1, size=100))
        starts = np.array([0, 60])  # rows 50..59 belong to no net
        lengths = np.array([50, 40])

        def make_net() -> ElasticNetMSLE:
            return ElasticNetMSLE(alpha=0.01, max_iter=80, tol=1e-5)

        batched = [make_net(), make_net()]
        fit_elastic_nets(batched, x, y, starts, lengths)
        solo = [
            make_net().fit(x[0:50], y[0:50]),
            make_net().fit(x[60:100], y[60:100]),
        ]
        for one, many in zip(solo, batched):
            assert np.array_equal(one.coef_, many.coef_)
            assert one.intercept_ == many.intercept_

    def test_batched_fit_rejects_mismatched_hyperparams(self):
        nets = [ElasticNetMSLE(alpha=0.01), ElasticNetMSLE(alpha=0.5)]
        x = np.ones((4, 2))
        y = np.ones(4)
        with pytest.raises(ValueError):
            fit_elastic_nets(nets, x, y, np.array([0, 2]), np.array([2, 2]))
