"""Tests for model lifecycle management (core.lifecycle)."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.core.lifecycle import (
    LifecycleManager,
    ModelRegistry,
    ModelVersion,
    RetrainPolicy,
)
from repro.core.predictor import CleoPredictor
from repro.core.model_store import ModelStore


def make_dummy_predictor() -> CleoPredictor:
    return CleoPredictor(store=ModelStore())


class TestRetrainPolicy:
    def test_defaults_match_paper(self):
        policy = RetrainPolicy()
        assert policy.window_days == 2
        assert policy.frequency_days == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_days": 0},
            {"frequency_days": 0},
            {"drift_threshold_pct": -5.0},
            {"regression_factor": 1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetrainPolicy(**kwargs)


class TestModelRegistry:
    def test_publish_activates(self):
        registry = ModelRegistry()
        version = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        assert registry.active() is version
        assert version.version == 1

    def test_versions_increment(self):
        registry = ModelRegistry()
        registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        second = registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        assert second.version == 2
        assert registry.version_count == 2

    def test_rollback_reactivates_previous(self):
        registry = ModelRegistry()
        first = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        rolled = registry.rollback()
        assert rolled is first
        assert registry.active() is first

    def test_rollback_without_history_fails(self):
        registry = ModelRegistry()
        with pytest.raises(ValidationError):
            registry.rollback()
        registry.publish(make_dummy_predictor(), day=1, window=(1,))
        with pytest.raises(ValidationError):
            registry.rollback()

    def test_active_requires_publish(self):
        with pytest.raises(ValidationError):
            ModelRegistry().active()

    def test_get_by_version(self):
        registry = ModelRegistry()
        version = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        assert registry.get(1) is version
        with pytest.raises(ValidationError):
            registry.get(99)

    def test_history_preserves_rollbacked_versions(self):
        registry = ModelRegistry()
        registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        registry.rollback()
        assert registry.version_count == 2
        assert len(registry.history()) == 2

    def test_describe(self):
        version = ModelVersion(
            version=4, trained_on_day=20, window=(18, 19),
            predictor=make_dummy_predictor(),
        )
        text = version.describe()
        assert "v4" in text and "day 20" in text


class TestLifecycleManager:
    @pytest.fixture(scope="class")
    def outcomes_and_manager(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(window_days=1, frequency_days=2)
        )
        outcomes = manager.run(tiny_bundle.log)
        return outcomes, manager

    def test_one_outcome_per_scored_day(self, outcomes_and_manager, tiny_bundle):
        outcomes, _ = outcomes_and_manager
        # window_days=1 -> days 2 and 3 are scored.
        assert [o.day for o in outcomes] == tiny_bundle.log.days[1:]

    def test_first_day_always_retrains(self, outcomes_and_manager):
        outcomes, _ = outcomes_and_manager
        assert outcomes[0].retrained

    def test_scoring_is_out_of_sample(self, outcomes_and_manager, tiny_bundle):
        outcomes, manager = outcomes_and_manager
        for outcome in outcomes:
            version = manager.registry.get(outcome.active_version)
            assert outcome.day not in version.window

    def test_quality_is_meaningful(self, outcomes_and_manager):
        outcomes, _ = outcomes_and_manager
        for outcome in outcomes:
            assert outcome.median_error_pct < 100.0
            assert outcome.pearson > 0.5

    def test_respects_frequency(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(window_days=1, frequency_days=10)
        )
        outcomes = manager.run(tiny_bundle.log)
        # First scored day trains; day 3 is only 1 < 10 days later.
        assert [o.retrained for o in outcomes] == [True, False]
        assert manager.registry.version_count == 1

    def test_drift_triggers_early_retrain(self, tiny_bundle):
        # An absurdly low threshold guarantees the drift path fires.
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=100, drift_threshold_pct=1e-6
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        assert outcomes[1].retrained
        assert manager.registry.version_count == 2

    def test_too_short_log_rejected(self, tiny_bundle):
        manager = LifecycleManager(policy=RetrainPolicy(window_days=5))
        with pytest.raises(ValidationError):
            manager.run(tiny_bundle.log)

    def test_unknown_day_rejected(self, tiny_bundle):
        manager = LifecycleManager(policy=RetrainPolicy(window_days=1))
        with pytest.raises(ValidationError):
            manager.run(tiny_bundle.log, days=[99])

    def test_regression_gate_disabled(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=1, regression_factor=None
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        assert all(not o.rolled_back for o in outcomes)

    def test_tight_regression_gate_can_roll_back(self, tiny_bundle):
        # regression_factor barely above 1: any fresh version scoring even
        # slightly worse than its predecessor on the gate day is discarded.
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=1, regression_factor=1.0000001
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        # Rollback may or may not fire depending on which version wins the
        # day; the invariant is consistency between flags and the registry.
        rollbacks = sum(o.rolled_back for o in outcomes)
        retrains = sum(o.retrained for o in outcomes)
        assert manager.registry.version_count == retrains
        assert rollbacks <= retrains
        for outcome in outcomes:
            if outcome.rolled_back:
                version = manager.registry.get(outcome.active_version)
                assert version.trained_on_day < outcome.day


class TestRollbackRearmsRetrain:
    def test_rollback_rearms_early_retrain_trigger(self, tiny_bundle, monkeypatch):
        """Section 6.7 gate rollback must leave the retrain trigger armed.

        Pre-fix, ``step`` cleared ``_drift_pending`` and stamped
        ``_last_train_day`` *before* the gate ran, so a rolled-back retrain
        silenced its own trigger and the stale predecessor served for up to
        ``frequency_days`` — violating the "self-correct on the next cycle"
        contract.
        """
        from dataclasses import replace as dc_replace

        import repro.core.lifecycle as lifecycle_mod

        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=100, regression_factor=1.5
            )
        )
        days = tiny_bundle.log.days
        first = manager.step(tiny_bundle.log, days[1])
        assert first.retrained and not first.rolled_back

        # Pretend yesterday drifted, so today retrains early — and force
        # the fresh version to look regressed so the gate rolls it back.
        manager._drift_pending = True
        real_eval = lifecycle_mod.evaluate_predictor_on_log

        def biased_eval(predictor, log, name=""):
            quality = real_eval(predictor, log, name=name)
            if name == "fresh":
                return dc_replace(
                    quality, median_error_pct=quality.median_error_pct * 10 + 1000
                )
            return quality

        monkeypatch.setattr(
            lifecycle_mod, "evaluate_predictor_on_log", biased_eval
        )
        outcome = manager.step(tiny_bundle.log, days[2])
        assert outcome.retrained and outcome.rolled_back
        # The stale predecessor is serving again; the early-retrain trigger
        # must be armed so the very next day tries again.
        assert manager._drift_pending is True
        assert manager._should_retrain(days[2] + 1)
