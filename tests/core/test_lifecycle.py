"""Tests for model lifecycle management (core.lifecycle)."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.core.lifecycle import (
    LifecycleManager,
    ModelRegistry,
    ModelVersion,
    RetrainPolicy,
)
from repro.core.predictor import CleoPredictor
from repro.core.model_store import ModelStore


def make_dummy_predictor() -> CleoPredictor:
    return CleoPredictor(store=ModelStore())


class TestRetrainPolicy:
    def test_defaults_match_paper(self):
        policy = RetrainPolicy()
        assert policy.window_days == 2
        assert policy.frequency_days == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_days": 0},
            {"frequency_days": 0},
            {"drift_threshold_pct": -5.0},
            {"regression_factor": 1.0},
            {"drift_window_days": 0},
            {"drift_degradation_factor": 1.0},
            {"drift_degradation_factor": 0.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RetrainPolicy(**kwargs)


class TestModelRegistry:
    def test_publish_activates(self):
        registry = ModelRegistry()
        version = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        assert registry.active() is version
        assert version.version == 1

    def test_versions_increment(self):
        registry = ModelRegistry()
        registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        second = registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        assert second.version == 2
        assert registry.version_count == 2

    def test_rollback_reactivates_previous(self):
        registry = ModelRegistry()
        first = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        rolled = registry.rollback()
        assert rolled is first
        assert registry.active() is first

    def test_rollback_without_history_fails(self):
        registry = ModelRegistry()
        with pytest.raises(ValidationError):
            registry.rollback()
        registry.publish(make_dummy_predictor(), day=1, window=(1,))
        with pytest.raises(ValidationError):
            registry.rollback()

    def test_active_requires_publish(self):
        with pytest.raises(ValidationError):
            ModelRegistry().active()

    def test_get_by_version(self):
        registry = ModelRegistry()
        version = registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        assert registry.get(1) is version
        with pytest.raises(ValidationError):
            registry.get(99)

    def test_history_preserves_rollbacked_versions(self):
        registry = ModelRegistry()
        registry.publish(make_dummy_predictor(), day=3, window=(1, 2))
        registry.publish(make_dummy_predictor(), day=13, window=(11, 12))
        registry.rollback()
        assert registry.version_count == 2
        assert len(registry.history()) == 2

    def test_rollback_then_publish_keeps_history_ordered(self):
        """Publishing after a rollback appends — it never truncates the
        discarded version, and numbering continues past it."""
        registry = ModelRegistry()
        registry.publish(make_dummy_predictor(), day=1, window=(0,))
        second = registry.publish(make_dummy_predictor(), day=2, window=(1,))
        registry.rollback()
        third = registry.publish(make_dummy_predictor(), day=3, window=(2,))
        assert registry.active() is third
        assert third.version == 3
        assert [v.version for v in registry.history()] == [1, 2, 3]
        assert registry.get(2) is second  # the rolled-back one is inspectable
        # A rollback from v3 lands on v2 (list order, not activation order).
        assert registry.rollback() is second

    def test_describe(self):
        version = ModelVersion(
            version=4, trained_on_day=20, window=(18, 19),
            predictor=make_dummy_predictor(),
        )
        text = version.describe()
        assert "v4" in text and "day 20" in text


class TestLifecycleManager:
    @pytest.fixture(scope="class")
    def outcomes_and_manager(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(window_days=1, frequency_days=2)
        )
        outcomes = manager.run(tiny_bundle.log)
        return outcomes, manager

    def test_one_outcome_per_scored_day(self, outcomes_and_manager, tiny_bundle):
        outcomes, _ = outcomes_and_manager
        # window_days=1 -> days 2 and 3 are scored.
        assert [o.day for o in outcomes] == tiny_bundle.log.days[1:]

    def test_first_day_always_retrains(self, outcomes_and_manager):
        outcomes, _ = outcomes_and_manager
        assert outcomes[0].retrained

    def test_scoring_is_out_of_sample(self, outcomes_and_manager, tiny_bundle):
        outcomes, manager = outcomes_and_manager
        for outcome in outcomes:
            version = manager.registry.get(outcome.active_version)
            assert outcome.day not in version.window

    def test_quality_is_meaningful(self, outcomes_and_manager):
        outcomes, _ = outcomes_and_manager
        for outcome in outcomes:
            assert outcome.median_error_pct < 100.0
            assert outcome.pearson > 0.5

    def test_respects_frequency(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(window_days=1, frequency_days=10)
        )
        outcomes = manager.run(tiny_bundle.log)
        # First scored day trains; day 3 is only 1 < 10 days later.
        assert [o.retrained for o in outcomes] == [True, False]
        assert manager.registry.version_count == 1

    def test_drift_triggers_early_retrain(self, tiny_bundle):
        # An absurdly low threshold guarantees the drift path fires.
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=100, drift_threshold_pct=1e-6
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        assert outcomes[1].retrained
        assert manager.registry.version_count == 2

    def test_too_short_log_rejected(self, tiny_bundle):
        manager = LifecycleManager(policy=RetrainPolicy(window_days=5))
        with pytest.raises(ValidationError):
            manager.run(tiny_bundle.log)

    def test_unknown_day_rejected(self, tiny_bundle):
        manager = LifecycleManager(policy=RetrainPolicy(window_days=1))
        with pytest.raises(ValidationError):
            manager.run(tiny_bundle.log, days=[99])

    def test_regression_gate_disabled(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=1, regression_factor=None
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        assert all(not o.rolled_back for o in outcomes)

    def test_tight_regression_gate_can_roll_back(self, tiny_bundle):
        # regression_factor barely above 1: any fresh version scoring even
        # slightly worse than its predecessor on the gate day is discarded.
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=1, regression_factor=1.0000001
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        # Rollback may or may not fire depending on which version wins the
        # day; the invariant is consistency between flags and the registry.
        rollbacks = sum(o.rolled_back for o in outcomes)
        retrains = sum(o.retrained for o in outcomes)
        assert manager.registry.version_count == retrains
        assert rollbacks <= retrains
        for outcome in outcomes:
            if outcome.rolled_back:
                version = manager.registry.get(outcome.active_version)
                assert version.trained_on_day < outcome.day


class TestRollbackRearmsRetrain:
    def test_rollback_rearms_early_retrain_trigger(self, tiny_bundle, monkeypatch):
        """Section 6.7 gate rollback must leave the retrain trigger armed.

        Pre-fix, ``step`` cleared ``_drift_pending`` and stamped
        ``_last_train_day`` *before* the gate ran, so a rolled-back retrain
        silenced its own trigger and the stale predecessor served for up to
        ``frequency_days`` — violating the "self-correct on the next cycle"
        contract.
        """
        from dataclasses import replace as dc_replace

        import repro.core.lifecycle as lifecycle_mod

        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1, frequency_days=100, regression_factor=1.5
            )
        )
        days = tiny_bundle.log.days
        first = manager.step(tiny_bundle.log, days[1])
        assert first.retrained and not first.rolled_back

        # Pretend yesterday drifted, so today retrains early — and force
        # the fresh version to look regressed so the gate rolls it back.
        manager._drift_pending = True
        real_eval = lifecycle_mod.evaluate_predictor_on_log

        def biased_eval(predictor, log, name=""):
            quality = real_eval(predictor, log, name=name)
            if name == "fresh":
                return dc_replace(
                    quality, median_error_pct=quality.median_error_pct * 10 + 1000
                )
            return quality

        monkeypatch.setattr(
            lifecycle_mod, "evaluate_predictor_on_log", biased_eval
        )
        outcome = manager.step(tiny_bundle.log, days[2])
        assert outcome.retrained and outcome.rolled_back
        # The stale predecessor is serving again; the early-retrain trigger
        # must be armed so the very next day tries again.
        assert manager._drift_pending is True
        assert manager._should_retrain(days[2] + 1)


class TestRollingDriftTrigger:
    """The relative (error-degradation) drift trigger, chaos-tested.

    A workload whose runtimes shift 50x mid-stream must arm an early
    retrain from the *relative* degradation of the rolling median error —
    no absolute ``drift_threshold_pct`` budget is configured — and the
    fresh version (trained on post-shift data) must pass the Section 6.7
    pre-production gate and recover the error level.
    """

    @staticmethod
    def _restamped(jobs, day, factor=1.0, tag=""):
        """Jobs re-stamped onto ``day`` with latencies scaled ``factor``x."""
        from dataclasses import replace as dc_replace

        out = []
        for job in jobs:
            ops = tuple(
                dc_replace(
                    op, day=day, actual_latency=op.actual_latency * factor
                )
                for op in job.operators
            )
            out.append(
                dc_replace(
                    job,
                    job_id=f"{job.job_id}{tag}",
                    day=day,
                    latency_seconds=job.latency_seconds * factor,
                    operators=ops,
                )
            )
        return out

    @pytest.fixture(scope="class")
    def drifted_log(self, tiny_bundle):
        """Days 1-2 clean; from day 3 on every runtime is 50x slower."""
        from repro.execution.runtime_log import RunLog

        days = tiny_bundle.log.days
        d1 = tiny_bundle.log.filter(days=[days[0]]).jobs
        d2 = tiny_bundle.log.filter(days=[days[1]]).jobs
        d3 = tiny_bundle.log.filter(days=[days[2]]).jobs
        return RunLog(
            jobs=[
                *d1,
                *d2,
                *self._restamped(d3, days[2], factor=50.0, tag="-drift"),
                *self._restamped(d2, days[2] + 1, factor=50.0, tag="-after"),
            ]
        )

    def test_degradation_arms_and_recovers(self, drifted_log):
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1,
                frequency_days=100,  # schedule alone would never retrain
                drift_window_days=1,
                drift_degradation_factor=1.5,
            )
        )
        days = drifted_log.days
        first = manager.step(drifted_log, days[1])  # clean day: baseline
        assert first.retrained
        assert not manager.drift_pending
        baseline_error = first.median_error_pct

        shifted = manager.step(drifted_log, days[2])  # 50x day
        assert not shifted.retrained  # schedule says no...
        assert manager.drift_pending  # ...but the rolling trigger armed
        assert shifted.median_error_pct > baseline_error * 1.5
        assert manager.rolling_median_error == pytest.approx(
            shifted.median_error_pct
        )

        recovered = manager.step(drifted_log, days[3])
        assert recovered.retrained  # the armed trigger fired
        assert not recovered.rolled_back  # fresh version passed the gate
        assert manager.registry.version_count == 2
        # Trained on post-shift data, the fresh version recovers.
        assert recovered.median_error_pct < shifted.median_error_pct
        assert not manager.drift_pending  # new version, new baseline

    def test_stable_workload_never_arms(self, tiny_bundle):
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1,
                frequency_days=100,
                drift_window_days=1,
                drift_degradation_factor=10.0,  # generous degradation budget
            )
        )
        outcomes = manager.run(tiny_bundle.log)
        assert [o.retrained for o in outcomes] == [True, False]
        assert not manager.drift_pending

    def test_window_must_fill_before_arming(self, drifted_log):
        """One bad day inside a 3-day window is noise, not drift."""
        manager = LifecycleManager(
            policy=RetrainPolicy(
                window_days=1,
                frequency_days=100,
                drift_window_days=3,
                drift_degradation_factor=1.5,
            )
        )
        days = drifted_log.days
        manager.step(drifted_log, days[1])
        manager.step(drifted_log, days[2])  # 50x day, window not full yet
        assert not manager.drift_pending
