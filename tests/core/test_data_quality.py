"""Tests for the trainer's data-quality gate and the quarantine ledger.

The gate's contract has three legs:

* **Detection** — poisoned rows (NaN / absurd latencies, double-appended
  duplicates, non-finite features) are excised with per-rule counts in a
  :class:`~repro.core.trainer.TrainingAudit`.
* **Clean-path parity** — a clean table short-circuits to the original
  object, so sanitized training is bitwise-identical to unsanitized
  training on healthy data; duplicate-only corruption is excised back to
  bitwise-identical models.
* **Typed failure** — a table that sanitizes to zero rows raises
  :class:`~repro.common.errors.DataQualityError`, never a silent fit.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.common.chaos import PoisonPolicy, RunLogPoisoner
from repro.common.errors import DataQualityError
from repro.core.config import ModelKind
from repro.core.trainer import CleoTrainer, TrainingAudit
from repro.features.table import MAX_SANE_LATENCY_S


def _store_models_equal(a, b) -> bool:
    """Bitwise equality of every individual model in two stores."""
    for kind in ModelKind:
        if set(a.models[kind]) != set(b.models[kind]):
            return False
        for signature, model in a.models[kind].items():
            other = b.models[kind][signature]
            if not np.array_equal(model._net.coef_, other._net.coef_):
                return False
            if model._net.intercept_ != other._net.intercept_:
                return False
    return True


# ------------------------------------------------------------------ #
# FeatureTable.sanitize_mask
# ------------------------------------------------------------------ #


class TestSanitizeMask:
    def test_clean_table_keeps_everything(self, tiny_bundle):
        table = tiny_bundle.log.to_table()
        keep, counts = table.sanitize_mask()
        assert keep.all()
        assert counts["rows_dropped"] == 0

    def test_nan_latency_flagged(self, tiny_bundle):
        policy = PoisonPolicy(name="nan", nan_rate=0.1)
        poisoned, injected = RunLogPoisoner(policy).poison(tiny_bundle.log)
        keep, counts = poisoned.to_table().sanitize_mask()
        assert counts["invalid_latency"] == injected["nan"]
        assert counts["rows_dropped"] == injected["nan"]

    def test_outlier_latency_flagged(self, tiny_bundle):
        policy = PoisonPolicy(name="out", outlier_rate=0.1)
        poisoned, injected = RunLogPoisoner(policy).poison(tiny_bundle.log)
        keep, counts = poisoned.to_table().sanitize_mask()
        assert counts["invalid_latency"] == injected["outlier"]

    def test_adjacent_duplicates_flagged(self, tiny_bundle):
        policy = PoisonPolicy(name="dup", duplicate_rate=0.1)
        poisoned, injected = RunLogPoisoner(policy).poison(tiny_bundle.log)
        keep, counts = poisoned.to_table().sanitize_mask()
        assert counts["duplicate_rows"] == injected["duplicate"]

    def test_sane_latency_bound_is_physical(self):
        # ~116 days: beyond any real operator, below float overflow.
        assert MAX_SANE_LATENCY_S == 1e7


# ------------------------------------------------------------------ #
# CleoTrainer gate
# ------------------------------------------------------------------ #


class TestTrainerGate:
    def test_sanitized_training_is_bitwise_noop_on_clean_data(self, tiny_bundle):
        log = tiny_bundle.log
        gated = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
        ungated = CleoTrainer(sanitize=False).train(
            log, individual_days=[1, 2], combined_days=[2]
        )
        assert _store_models_equal(gated.store, ungated.store)

    def test_duplicate_poison_recovers_bitwise(self, tiny_bundle):
        log = tiny_bundle.log
        clean = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
        policy = PoisonPolicy(name="dup", duplicate_rate=0.2, days=(1, 2))
        poisoned, injected = RunLogPoisoner(policy).poison(log)
        assert injected["duplicate"] > 0
        trainer = CleoTrainer()
        recovered = trainer.train(
            poisoned, individual_days=[1, 2], combined_days=[2]
        )
        assert _store_models_equal(clean.store, recovered.store)
        assert trainer.last_audit is not None
        assert trainer.last_audit.duplicate_rows > 0

    def test_nan_poison_trains_through_with_audit(self, tiny_bundle):
        policy = PoisonPolicy(name="nan", nan_rate=0.1, days=(1, 2))
        poisoned, injected = RunLogPoisoner(policy).poison(tiny_bundle.log)
        trainer = CleoTrainer()
        predictor = trainer.train(
            poisoned, individual_days=[1, 2], combined_days=[2]
        )
        audit = trainer.last_audit
        assert audit is not None and not audit.is_clean
        assert audit.invalid_latency > 0
        assert predictor.store.count() > 0

    def test_all_poisoned_day_raises_typed_error(self, tiny_bundle):
        policy = PoisonPolicy(name="storm", nan_rate=1.0, days=(1,))
        poisoned, _ = RunLogPoisoner(policy).poison(tiny_bundle.log)
        with pytest.raises(DataQualityError):
            CleoTrainer().train_individual(poisoned.filter(days=[1]))

    def test_sanitize_off_restores_pre_gate_behavior(self, tiny_bundle):
        # Without the gate, NaN targets reach the fitter and blow up with
        # an untyped ValueError — the failure mode the gate exists to
        # replace with typed excision.
        policy = PoisonPolicy(name="nan", nan_rate=0.1, days=(1, 2))
        poisoned, _ = RunLogPoisoner(policy).poison(tiny_bundle.log)
        trainer = CleoTrainer(sanitize=False)
        with pytest.raises(ValueError):
            trainer.train_individual(poisoned.filter(days=[1, 2]))
        assert trainer.last_audit is None

    def test_audit_resets_per_train_call(self, tiny_bundle):
        trainer = CleoTrainer()
        trainer.train(tiny_bundle.log, individual_days=[1, 2], combined_days=[2])
        first = trainer.last_audit
        trainer.train(tiny_bundle.log, individual_days=[1, 2], combined_days=[2])
        assert trainer.last_audit is not None
        assert trainer.last_audit.rows_seen == first.rows_seen

    def test_audit_merge_and_describe(self):
        a = TrainingAudit(rows_seen=10, rows_kept=8, invalid_latency=2)
        b = TrainingAudit(rows_seen=5, rows_kept=5)
        merged = a.merge(b)
        assert merged.rows_seen == 15 and merged.rows_dropped == 2
        assert not merged.is_clean and b.is_clean
        assert "13/15 rows kept" in merged.describe()


# ------------------------------------------------------------------ #
# ModelStore.remove
# ------------------------------------------------------------------ #


class TestModelStoreRemove:
    def test_remove_existing_model(self, tiny_predictor):
        from repro.core.serialization import predictor_from_dict, predictor_to_dict

        store = predictor_from_dict(predictor_to_dict(tiny_predictor)).store
        kind = ModelKind.OP_SUBGRAPH
        signature = next(iter(store.models[kind]))
        before = store.count()
        assert store.remove(kind, signature) is True
        assert store.count() == before - 1
        assert signature not in store.models[kind]

    def test_remove_missing_signature_is_noop(self, tiny_predictor):
        from repro.core.serialization import predictor_from_dict, predictor_to_dict

        store = predictor_from_dict(predictor_to_dict(tiny_predictor)).store
        before = store.count()
        assert store.remove(ModelKind.OP_SUBGRAPH, 123456789) is False
        assert store.count() == before

    def test_remove_is_idempotent(self, tiny_predictor):
        from repro.core.serialization import predictor_from_dict, predictor_to_dict

        store = predictor_from_dict(predictor_to_dict(tiny_predictor)).store
        kind = ModelKind.OP_SUBGRAPH
        signature = next(iter(store.models[kind]))
        assert store.remove(kind, signature) is True
        assert store.remove(kind, signature) is False
