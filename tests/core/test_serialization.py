"""Tests for model serialization (the feedback-loop text-file transport)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import (
    load_predictor,
    save_predictor,
    store_from_dict,
    store_to_dict,
)


class TestStoreRoundTrip:
    def test_counts_preserved(self, tiny_predictor):
        payload = store_to_dict(tiny_predictor.store)
        restored = store_from_dict(payload)
        assert restored.count() == tiny_predictor.store.count()

    def test_individual_predictions_exact(self, tiny_bundle, tiny_predictor):
        restored = store_from_dict(store_to_dict(tiny_predictor.store))
        records = list(tiny_bundle.test_log().operator_records())[:40]
        for record in records:
            original = tiny_predictor.store.most_specific(record.signatures)
            loaded = restored.most_specific(record.signatures)
            assert (original is None) == (loaded is None)
            if original is None or loaded is None:
                continue
            assert original[0] is loaded[0]  # same model kind chosen
            assert original[1].predict_one(record.features) == pytest.approx(
                loaded[1].predict_one(record.features), rel=1e-12
            )

    def test_resource_profiles_exact(self, tiny_bundle, tiny_predictor):
        restored = store_from_dict(store_to_dict(tiny_predictor.store))
        record = next(tiny_bundle.test_log().operator_records())
        original = tiny_predictor.store.most_specific(record.signatures)
        loaded = restored.most_specific(record.signatures)
        if original is None:
            pytest.skip("record not covered")
        p1 = original[1].resource_profile(record.features)
        p2 = loaded[1].resource_profile(record.features)
        assert p1.theta_p == pytest.approx(p2.theta_p)
        assert p1.theta_c == pytest.approx(p2.theta_c)

    def test_version_check(self, tiny_predictor):
        payload = store_to_dict(tiny_predictor.store)
        payload["format_version"] = 999
        with pytest.raises(ValueError):
            store_from_dict(payload)

    def test_unfitted_model_rejected(self):
        from repro.core.learned_model import LearnedCostModel
        from repro.core.serialization import _learned_model_to_dict

        with pytest.raises(ValueError):
            _learned_model_to_dict(LearnedCostModel(include_context=False))


class TestPredictorRoundTrip:
    def test_file_roundtrip_predictions_match(self, tiny_bundle, tiny_predictor, tmp_path):
        path = tmp_path / "cleo_models.json"
        save_predictor(tiny_predictor, path)
        loaded = load_predictor(path)
        records = list(tiny_bundle.test_log().operator_records())[:60]
        original = tiny_predictor.predict_records(records)
        restored = loaded.predict_records(records)
        assert np.allclose(original, restored, rtol=1e-9)

    def test_loaded_predictor_has_combined(self, tiny_predictor, tmp_path):
        path = tmp_path / "cleo_models.json"
        save_predictor(tiny_predictor, path)
        loaded = load_predictor(path)
        assert loaded.combined is not None and loaded.combined.is_fitted

    def test_file_is_json_text(self, tiny_predictor, tmp_path):
        import json

        path = tmp_path / "cleo_models.json"
        save_predictor(tiny_predictor, path)
        payload = json.loads(path.read_text())
        assert "models" in payload and "combined" in payload


class TestRegistryRoundTrip:
    """Round-trip of the lifecycle registry (all versions + active pointer)."""

    @pytest.fixture()
    def registry(self, tiny_predictor):
        from repro.core.lifecycle import ModelRegistry

        registry = ModelRegistry()
        registry.publish(tiny_predictor, day=3, window=(1, 2))
        registry.publish(tiny_predictor, day=13, window=(11, 12))
        return registry

    def test_roundtrip_preserves_versions(self, registry, tmp_path):
        from repro.core.serialization import load_registry, save_registry

        path = tmp_path / "registry.json"
        save_registry(registry, path)
        restored = load_registry(path)
        assert restored.version_count == 2
        assert restored.active().version == 2
        assert restored.get(1).window == (1, 2)
        assert restored.get(2).trained_on_day == 13

    def test_roundtrip_preserves_rollback_state(self, registry, tmp_path):
        from repro.core.serialization import load_registry, save_registry

        registry.rollback()
        path = tmp_path / "registry.json"
        save_registry(registry, path)
        restored = load_registry(path)
        assert restored.version_count == 2
        assert restored.active().version == 1

    def test_restored_predictions_match(self, registry, tiny_bundle, tmp_path):
        from repro.core.serialization import load_registry, save_registry

        path = tmp_path / "registry.json"
        save_registry(registry, path)
        restored = load_registry(path)
        record = next(tiny_bundle.test_log().operator_records())
        assert restored.active().predictor.predict_record(record) == pytest.approx(
            registry.active().predictor.predict_record(record), rel=1e-9
        )

    def test_version_check(self, registry, tmp_path):
        import json

        from repro.core.serialization import load_registry, registry_to_dict

        payload = registry_to_dict(registry)
        payload["format_version"] = 99
        path = tmp_path / "registry.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_registry(path)


class TestAtomicSave:
    def test_atomic_save_roundtrips(self, tmp_path):
        import json

        from repro.core.serialization import save_json_atomic

        path = tmp_path / "state.json"
        save_json_atomic({"a": 1}, path)
        save_json_atomic({"a": 2}, path)
        assert json.loads(path.read_text()) == {"a": 2}
        # No temp-file litter left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_failed_payload_leaves_old_file(self, tmp_path):
        import json

        from repro.core.serialization import save_json_atomic

        path = tmp_path / "state.json"
        save_json_atomic({"a": 1}, path)
        with pytest.raises(TypeError):
            save_json_atomic({"bad": object()}, path)
        assert json.loads(path.read_text()) == {"a": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]


class TestQuarantineRoundTrip:
    def test_ledger_roundtrips(self):
        from repro.core.config import ModelKind
        from repro.core.regression_control import ModelQuarantine
        from repro.core.serialization import (
            quarantine_from_dict,
            quarantine_to_dict,
        )

        quarantine = ModelQuarantine(tolerance_factor=3.0, min_observations=7)
        quarantine.record(ModelKind.OP_SUBGRAPH, 123)
        quarantine.record(ModelKind.OPERATOR, 456)
        restored = quarantine_from_dict(quarantine_to_dict(quarantine))
        assert restored.tolerance_factor == 3.0
        assert restored.min_observations == 7
        assert restored.ledger() == quarantine.ledger()

    def test_restored_ledger_replays_on_fresh_store(self, tiny_predictor):
        from repro.core.config import ModelKind
        from repro.core.regression_control import ModelQuarantine
        from repro.core.serialization import (
            predictor_from_dict,
            predictor_to_dict,
            quarantine_from_dict,
            quarantine_to_dict,
        )

        store = predictor_from_dict(predictor_to_dict(tiny_predictor)).store
        signature = next(iter(store.models[ModelKind.OP_SUBGRAPH]))
        quarantine = ModelQuarantine()
        quarantine.record(ModelKind.OP_SUBGRAPH, signature)
        restored = quarantine_from_dict(quarantine_to_dict(quarantine))
        assert restored.replay(store) == 1
        assert restored.replay(store) == 0  # idempotent second replay

    def test_version_check(self):
        from repro.core.regression_control import ModelQuarantine
        from repro.core.serialization import (
            quarantine_from_dict,
            quarantine_to_dict,
        )

        payload = quarantine_to_dict(ModelQuarantine())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            quarantine_from_dict(payload)


class TestHealthStateRoundTrip:
    def test_snapshots_roundtrip(self):
        from repro.core.serialization import (
            health_state_from_dict,
            health_state_to_dict,
        )
        from repro.serving.shard.health import ResilienceConfig, ShardHealth

        health = ShardHealth(0, ResilienceConfig())
        health.record_failure()
        health.record_success()
        payload = health_state_to_dict([health.snapshot()])
        restored_snapshots = health_state_from_dict(payload)
        fresh = ShardHealth(0, ResilienceConfig())
        fresh.restore(restored_snapshots[0])
        assert fresh.stats() == health.stats()

    def test_torn_state_rejected(self):
        from repro.core.serialization import (
            health_state_from_dict,
            health_state_to_dict,
        )
        from repro.serving.shard.health import ResilienceConfig, ShardHealth

        payload = health_state_to_dict(
            [ShardHealth(0, ResilienceConfig()).snapshot()]
        )
        payload["n_shards"] = 2
        with pytest.raises(ValueError):
            health_state_from_dict(payload)
