"""Tests for the model store, trainer, combined model, and predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.combined import META_FEATURE_NAMES, build_meta_row
from repro.core.config import SPECIFICITY_ORDER, CleoConfig, ModelKind
from repro.core.model_store import ModelStore, signature_for
from repro.core.predictor import CleoPredictor
from repro.core.robustness import evaluate_predictor_on_log, evaluate_store_on_log
from repro.core.trainer import CleoTrainer


class TestConfig:
    def test_specificity_order(self):
        assert SPECIFICITY_ORDER[0] is ModelKind.OP_SUBGRAPH
        assert SPECIFICITY_ORDER[-1] is ModelKind.OPERATOR

    def test_context_feature_flag(self):
        assert not ModelKind.OP_SUBGRAPH.uses_context_features
        assert ModelKind.OPERATOR.uses_context_features

    def test_validation(self):
        with pytest.raises(ValueError):
            CleoConfig(min_samples=1)
        with pytest.raises(ValueError):
            CleoConfig(elastic_alpha=-1)


class TestModelStore(object):
    def test_counts(self, tiny_predictor):
        store = tiny_predictor.store
        assert store.count() == sum(store.count(kind) for kind in ModelKind)
        assert store.count() > 0

    def test_lookup_consistency(self, tiny_bundle, tiny_predictor):
        store = tiny_predictor.store
        record = next(tiny_bundle.log.operator_records())
        for kind in ModelKind:
            sig = signature_for(kind, record.signatures)
            assert store.get(kind, sig) is store.lookup(kind, record.signatures)

    def test_most_specific_ordering(self, tiny_bundle, tiny_predictor):
        store = tiny_predictor.store
        for record in list(tiny_bundle.test_log().operator_records())[:50]:
            found = store.most_specific(record.signatures)
            if found is None:
                continue
            kind, _ = found
            # Everything more specific than `kind` must be uncovered.
            for candidate in SPECIFICITY_ORDER:
                if candidate is kind:
                    break
                assert store.lookup(candidate, record.signatures) is None

    def test_memory_accounting(self, tiny_predictor):
        assert tiny_predictor.memory_bytes > 0

    def test_describe(self, tiny_predictor):
        text = tiny_predictor.store.describe()
        assert "op_subgraph" in text


class TestTrainer:
    def test_min_samples_respected(self, tiny_bundle):
        trainer = CleoTrainer(CleoConfig(min_samples=10_000))
        store = trainer.train_individual(tiny_bundle.log)
        assert store.count() == 0

    def test_training_produces_all_kinds(self, tiny_predictor):
        for kind in ModelKind:
            assert tiny_predictor.store.count(kind) > 0

    def test_operator_model_count_bounded_by_op_types(self, tiny_predictor):
        # At most one model per physical operator type.
        assert tiny_predictor.store.count(ModelKind.OPERATOR) <= 15

    def test_combined_requires_records(self, tiny_predictor):
        from repro.execution.runtime_log import RunLog

        trainer = CleoTrainer()
        with pytest.raises(ValueError):
            trainer.train_combined(tiny_predictor.store, RunLog())


class TestCombinedModel:
    def test_meta_row_shape(self, tiny_bundle, tiny_predictor):
        record = next(tiny_bundle.log.operator_records())
        row = build_meta_row(tiny_predictor.store, record.features, record.signatures)
        assert row.shape == (len(META_FEATURE_NAMES),)
        assert np.isfinite(row).all()

    def test_coverage_flags_binary(self, tiny_bundle, tiny_predictor):
        record = next(tiny_bundle.log.operator_records())
        row = build_meta_row(tiny_predictor.store, record.features, record.signatures)
        flags = row[4:8]
        assert set(flags.tolist()) <= {0.0, 1.0}

    def test_predictions_nonnegative(self, tiny_bundle, tiny_predictor):
        for record in list(tiny_bundle.test_log().operator_records())[:100]:
            assert tiny_predictor.predict_record(record) >= 0.0


class TestPredictor:
    def test_full_coverage(self, tiny_bundle, tiny_predictor):
        records = list(tiny_bundle.test_log().operator_records())
        predictions = tiny_predictor.predict_records(records)
        assert len(predictions) == len(records)
        assert np.isfinite(predictions).all()

    def test_lookup_accounting(self, tiny_bundle, tiny_predictor):
        tiny_predictor.reset_lookup_count()
        record = next(tiny_bundle.test_log().operator_records())
        tiny_predictor.predict_record(record)
        assert tiny_predictor.lookup_count == CleoPredictor.LOOKUPS_PER_PREDICTION

    def test_predict_with_kind_none_when_uncovered(self, tiny_bundle, tiny_predictor):
        records = list(tiny_bundle.test_log().operator_records())
        uncovered = [
            r
            for r in records
            if not tiny_predictor.covers(ModelKind.OP_SUBGRAPH, r.signatures)
        ]
        if uncovered:
            assert (
                tiny_predictor.predict_with_kind(
                    ModelKind.OP_SUBGRAPH, uncovered[0].features, uncovered[0].signatures
                )
                is None
            )

    def test_fallback_without_combined(self, tiny_bundle, tiny_predictor):
        bare = CleoPredictor(store=tiny_predictor.store, combined=None)
        record = next(tiny_bundle.test_log().operator_records())
        assert bare.predict_record(record) >= 0.0

    def test_coverage_fraction_bounds(self, tiny_bundle, tiny_predictor):
        records = list(tiny_bundle.test_log().operator_records())
        for kind in ModelKind:
            fraction = tiny_predictor.coverage_fraction(kind, records)
            assert 0.0 <= fraction <= 1.0


class TestPaperShape:
    """The headline Table 5 orderings, asserted at tiny scale."""

    def test_accuracy_coverage_tradeoff(self, tiny_bundle, tiny_predictor):
        test = tiny_bundle.test_log()
        quality = evaluate_store_on_log(tiny_predictor.store, test)
        coverage = {kind: quality[kind].coverage_pct for kind in ModelKind}
        assert coverage[ModelKind.OP_SUBGRAPH] <= coverage[ModelKind.OP_SUBGRAPH_APPROX]
        assert coverage[ModelKind.OP_SUBGRAPH_APPROX] <= coverage[ModelKind.OP_INPUT] + 1e-9
        assert coverage[ModelKind.OP_INPUT] <= coverage[ModelKind.OPERATOR] + 1e-9

    def test_subgraph_beats_operator_accuracy(self, tiny_bundle, tiny_predictor):
        quality = evaluate_store_on_log(tiny_predictor.store, tiny_bundle.test_log())
        assert (
            quality[ModelKind.OP_SUBGRAPH].median_error_pct
            < quality[ModelKind.OPERATOR].median_error_pct
        )

    def test_combined_covers_everything_accurately(self, tiny_bundle, tiny_predictor):
        test = tiny_bundle.test_log()
        combined = evaluate_predictor_on_log(tiny_predictor, test)
        operator = evaluate_store_on_log(tiny_predictor.store, test)[ModelKind.OPERATOR]
        assert combined.coverage_pct == 100.0
        assert combined.median_error_pct <= operator.median_error_pct
