"""Tests for lifecycle durability and mid-retrain crash recovery.

The write-ahead contract: durable state is committed atomically at the
end of each completed step, so a crash at *any* injected point leaves the
previous step's state on disk — never a half-published version — and a
resumed manager retries the day and converges to the crash-free replay
bitwise.
"""

from __future__ import annotations

import json

import pytest

from repro.common.chaos import CRASH_POINTS, CrashPolicy, PipelineChaos
from repro.common.errors import InjectedCrashError
from repro.core.lifecycle import LifecycleManager, RetrainPolicy


POLICY = RetrainPolicy(window_days=2, frequency_days=1)


def _replay_with_crashes(log, days, state_path, chaos):
    """Run days through a durable manager, resuming after each crash."""
    manager = LifecycleManager(policy=POLICY, state_path=state_path, chaos=chaos)
    outcomes = []
    crashes = 0
    pending = list(days)
    while pending:
        day = pending[0]
        try:
            outcomes.append(manager.step(log, day))
        except InjectedCrashError:
            crashes += 1
            manager = LifecycleManager.resume(
                state_path, policy=POLICY, chaos=chaos
            )
            continue
        pending.pop(0)
    return manager, outcomes, crashes


@pytest.fixture(scope="module")
def clean_replay(tiny_bundle):
    manager = LifecycleManager(policy=POLICY)
    days = tiny_bundle.log.days[2:]
    return manager, [manager.step(tiny_bundle.log, d) for d in days]


class TestDurableState:
    def test_state_persists_after_each_step(self, tiny_bundle, tmp_path):
        state_path = tmp_path / "state.json"
        manager = LifecycleManager(policy=POLICY, state_path=state_path)
        day = tiny_bundle.log.days[2]
        manager.step(tiny_bundle.log, day)
        payload = json.loads(state_path.read_text())
        assert payload["last_train_day"] == day
        assert len(payload["registry"]["versions"]) == 1

    def test_resume_from_missing_file_is_fresh(self, tmp_path):
        manager = LifecycleManager.resume(tmp_path / "absent.json", policy=POLICY)
        assert manager.registry.version_count == 0
        assert not manager.registry.has_active

    def test_resume_restores_registry_and_control_state(
        self, tiny_bundle, tmp_path
    ):
        state_path = tmp_path / "state.json"
        manager = LifecycleManager(policy=POLICY, state_path=state_path)
        days = tiny_bundle.log.days[2:]
        outcomes = [manager.step(tiny_bundle.log, d) for d in days]

        resumed = LifecycleManager.resume(state_path, policy=POLICY)
        assert resumed.registry.version_count == manager.registry.version_count
        assert resumed.registry.active().version == manager.registry.active().version
        assert resumed.drift_pending == manager.drift_pending
        assert resumed.rolling_median_error == manager.rolling_median_error
        # The resumed registry serves bitwise-identically.
        record = next(tiny_bundle.test_log().operator_records())
        assert resumed.registry.active().predictor.predict_record(
            record
        ) == manager.registry.active().predictor.predict_record(record)

    def test_resumed_manager_continues_identically(self, tmp_path):
        from repro.experiments.shared import get_bundle

        log = get_bundle("cluster1", scale="tiny", days=(1, 2, 3, 4), seed=0).log
        days = log.days[2:]
        state_path = tmp_path / "state.json"
        durable = LifecycleManager(policy=POLICY, state_path=state_path)
        durable.step(log, days[0])
        resumed = LifecycleManager.resume(state_path, policy=POLICY)

        clean = LifecycleManager(policy=POLICY)
        clean.step(log, days[0])
        for day in days[1:]:
            a = resumed.step(log, day)
            b = clean.step(log, day)
            assert a.active_version == b.active_version
            assert a.median_error_pct == b.median_error_pct


class TestCrashRecovery:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_at_each_point_recovers_bitwise(
        self, tiny_bundle, tmp_path, clean_replay, point
    ):
        log = tiny_bundle.log
        days = log.days[2:]
        chaos = PipelineChaos(
            CrashPolicy(name="t", points=(point,), days=(days[0],))
        )
        manager, outcomes, crashes = _replay_with_crashes(
            log, days, tmp_path / "state.json", chaos
        )
        assert crashes == 1
        _, clean_outcomes = clean_replay
        assert len(outcomes) == len(clean_outcomes)
        for a, b in zip(clean_outcomes, outcomes):
            assert a.day == b.day
            assert a.active_version == b.active_version
            assert a.median_error_pct == b.median_error_pct

    def test_no_half_published_version_on_disk(self, tiny_bundle, tmp_path):
        log = tiny_bundle.log
        days = log.days[2:]
        state_path = tmp_path / "state.json"
        chaos = PipelineChaos(
            CrashPolicy(name="t", points=("post_publish",), days=(days[0],))
        )
        manager = LifecycleManager(
            policy=POLICY, state_path=state_path, chaos=chaos
        )
        with pytest.raises(InjectedCrashError):
            manager.step(log, days[0])
        # The in-memory registry published before the crash point, but the
        # durable state must not have: nothing was committed this step.
        assert manager.registry.version_count == 1
        assert not state_path.exists()

    def test_crash_day_publishes_exactly_once_durably(
        self, tiny_bundle, tmp_path
    ):
        log = tiny_bundle.log
        days = log.days[2:]
        state_path = tmp_path / "state.json"
        chaos = PipelineChaos(
            CrashPolicy(name="t", points=("pre_publish",), days=(days[0],))
        )
        manager, outcomes, crashes = _replay_with_crashes(
            log, days, state_path, chaos
        )
        assert crashes == 1
        payload = json.loads(state_path.read_text())
        clean = LifecycleManager(policy=POLICY)
        for day in days:
            clean.step(log, day)
        assert len(payload["registry"]["versions"]) == clean.registry.version_count

    def test_chaos_scoped_elsewhere_never_fires(self, tiny_bundle, tmp_path):
        log = tiny_bundle.log
        days = log.days[2:]
        chaos = PipelineChaos(
            CrashPolicy(name="t", points=("pre_publish",), days=(999,))
        )
        manager, outcomes, crashes = _replay_with_crashes(
            log, days, tmp_path / "state.json", chaos
        )
        assert crashes == 0
        assert chaos.stats()["total"] == 0
