"""Tests for decision trees, random forests, and FastTree boosting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestRegressor
from repro.ml.gbm import FastTreeRegressor
from repro.ml.tree import DecisionTreeRegressor


def _step_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 3))
    y = np.where(x[:, 0] > 0.5, 10.0, 1.0) + 0.01 * rng.normal(size=n)
    return x, y


class TestDecisionTree:
    def test_learns_step_function(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        mse = float(np.mean((tree.predict(x) - y) ** 2))
        # Histogram split finding quantizes thresholds to bin edges, so a
        # small boundary region stays mixed; anything below the no-split
        # variance (~20) by 20x is a real fit.
        assert mse < 1.0

    def test_depth_limit_respected(self):
        x, y = _step_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.tree_depth <= 2

    def test_single_leaf_predicts_mean(self):
        x, y = _step_data()
        stump = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert stump.node_count == 1
        assert stump.predict(x[:1])[0] == pytest.approx(float(y.mean()))

    def test_constant_target_no_split(self):
        x = np.random.default_rng(0).normal(size=(50, 4))
        y = np.full(50, 3.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.node_count == 1

    def test_min_samples_leaf(self):
        x, y = _step_data(n=40)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=15).fit(x, y)
        # With min 15 per leaf and 40 samples, at most 2 levels of splits.
        assert tree.node_count <= 7

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=80))
    def test_predictions_within_target_range(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3))
        y = rng.uniform(-5, 5, size=n)
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        preds = tree.predict(x)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9

    def test_train_test_split_consistency(self):
        """Boundary values route the same way at fit and predict time."""
        x = np.array([[1.0], [1.0], [2.0], [2.0], [3.0], [3.0]] * 5)
        y = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0] * 5)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert np.allclose(tree.predict(x), y)


class TestRandomForest:
    def test_fits_step_function(self):
        x, y = _step_data()
        forest = RandomForestRegressor(
            n_estimators=10, max_depth=6, max_features=None, seed=1
        ).fit(x, y)
        mse = float(np.mean((forest.predict(x) - y) ** 2))
        assert mse < 2.0

    def test_deterministic_given_seed(self):
        x, y = _step_data()
        f1 = RandomForestRegressor(n_estimators=5, seed=7).fit(x, y).predict(x)
        f2 = RandomForestRegressor(n_estimators=5, seed=7).fit(x, y).predict(x)
        assert np.allclose(f1, f2)

    def test_seed_changes_predictions(self):
        x, y = _step_data()
        f1 = RandomForestRegressor(n_estimators=5, seed=1).fit(x, y).predict(x)
        f2 = RandomForestRegressor(n_estimators=5, seed=2).fit(x, y).predict(x)
        assert not np.allclose(f1, f2)

    def test_max_features_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="bogus").fit(*_step_data(n=20))

    def test_n_estimators_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestFastTree:
    def test_beats_single_tree(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(400, 4))
        y = np.exp(2 * x[:, 0]) + x[:, 1] * 3
        gbm = FastTreeRegressor(n_estimators=30, max_depth=3, log_target=False, seed=0)
        tree = DecisionTreeRegressor(max_depth=3)
        gbm.fit(x, y)
        tree.fit(x, y)
        gbm_mse = float(np.mean((gbm.predict(x) - y) ** 2))
        tree_mse = float(np.mean((tree.predict(x) - y) ** 2))
        assert gbm_mse < tree_mse

    def test_log_target_keeps_predictions_nonnegative(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(100, 3))
        y = np.abs(rng.normal(5, 2, size=100))
        gbm = FastTreeRegressor(log_target=True).fit(x, y)
        assert (gbm.predict(x) >= 0).all()

    def test_log_target_rejects_negatives(self):
        with pytest.raises(ValueError):
            FastTreeRegressor(log_target=True).fit(np.ones((3, 1)), np.array([-1.0, 1, 2]))

    def test_staged_predictions_improve(self):
        x, y = _step_data()
        gbm = FastTreeRegressor(n_estimators=15, log_target=False, seed=0).fit(x, y)
        stages = gbm.staged_predict(x)
        first_mse = float(np.mean((stages[0] - y) ** 2))
        last_mse = float(np.mean((stages[-1] - y) ** 2))
        assert last_mse < first_mse

    def test_subsample_validation(self):
        with pytest.raises(ValueError):
            FastTreeRegressor(subsample=0.0)
        with pytest.raises(ValueError):
            FastTreeRegressor(subsample=1.5)

    def test_deterministic(self):
        x, y = _step_data()
        a = FastTreeRegressor(seed=3).fit(x, y).predict(x)
        b = FastTreeRegressor(seed=3).fit(x, y).predict(x)
        assert np.allclose(a, b)
