"""Tests for the MSLE elastic net (the paper's individual-model learner)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.losses import mean_squared_log_error
from repro.ml.proximal import ElasticNetMSLE


def _cost_like_data(n=150, seed=0, noise=0.05):
    """Targets shaped like operator costs: positive, multiplicative noise."""
    rng = np.random.default_rng(seed)
    rows = rng.uniform(1e3, 1e7, size=n)
    partitions = rng.integers(1, 256, size=n).astype(float)
    x = np.column_stack([rows, rows / partitions, partitions])
    y = 2e-5 * rows / partitions + 0.05 * partitions + 1.0
    y = y * np.exp(noise * rng.normal(size=n))
    return x, y


class TestFitQuality:
    def test_learns_cost_structure(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE(alpha=0.001).fit(x, y)
        predictions = model.predict(x)
        ratio = predictions / y
        assert float(np.median(np.abs(ratio - 1.0))) < 0.25

    def test_predictions_nonnegative(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE().fit(x, y)
        wild = np.array([[1e12, 1e12, 3000.0], [0.0, 0.0, 1.0]])
        assert (model.predict(wild) >= 0).all()

    def test_better_than_geometric_mean_baseline(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE(alpha=0.001).fit(x, y)
        baseline = np.full_like(y, float(np.exp(np.mean(np.log1p(y)))) - 1.0)
        assert mean_squared_log_error(model.predict(x), y) < mean_squared_log_error(
            baseline, y
        )

    def test_scale_invariance_of_alpha(self):
        """The same relative fit on a 1000x larger target scale."""
        x, y = _cost_like_data()
        small = ElasticNetMSLE(alpha=0.01).fit(x, y).predict(x) / y
        big = ElasticNetMSLE(alpha=0.01).fit(x, y * 1000).predict(x) / (y * 1000)
        assert float(np.median(np.abs(small - 1))) == pytest.approx(
            float(np.median(np.abs(big - 1))), abs=0.1
        )

    def test_rejects_negative_targets(self):
        with pytest.raises(ValueError):
            ElasticNetMSLE().fit(np.ones((3, 1)), np.array([1.0, -1.0, 2.0]))


class TestRegularization:
    def test_l1_sparsifies(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 10))
        y = np.exp(x[:, 0]) + 10.0
        sparse = ElasticNetMSLE(alpha=0.5, l1_ratio=1.0).fit(x, y)
        dense = ElasticNetMSLE(alpha=1e-4, l1_ratio=0.0).fit(x, y)
        assert len(sparse.selected_features) <= len(dense.selected_features)

    def test_nonneg_constraint_respected(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE(alpha=0.001, nonneg_indices=(1, 2)).fit(x, y)
        raw, _ = model.coefficients_raw()
        assert raw[1] >= 0.0
        assert raw[2] >= 0.0

    def test_nonneg_constraint_keeps_fit_reasonable(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE(alpha=0.001, nonneg_indices=(1, 2)).fit(x, y)
        ratio = model.predict(x) / y
        assert float(np.median(np.abs(ratio - 1.0))) < 0.35


class TestRawCoefficients:
    def test_roundtrip(self):
        x, y = _cost_like_data()
        model = ElasticNetMSLE(alpha=0.01).fit(x, y)
        w, b = model.coefficients_raw()
        manual = np.maximum(x @ w + b, 0.0)
        assert np.allclose(manual, model.predict(x), rtol=1e-9, atol=1e-9)

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ElasticNetMSLE().coefficients_raw()


class TestConvergence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=6, max_value=60))
    def test_loss_not_worse_than_start(self, n):
        """The optimizer must never end worse than its constant start."""
        rng = np.random.default_rng(n)
        x = rng.uniform(0, 1e5, size=(n, 4))
        y = np.abs(rng.normal(10.0, 3.0, size=n))
        model = ElasticNetMSLE(alpha=0.01).fit(x, y)
        start = np.full_like(y, float(np.exp(np.mean(np.log1p(y)))) - 1.0)
        assert mean_squared_log_error(model.predict(x), y) <= (
            mean_squared_log_error(start, y) + 1e-6
        )

    def test_iteration_counter(self):
        x, y = _cost_like_data(n=30)
        model = ElasticNetMSLE(max_iter=17).fit(x, y)
        assert 1 <= model.n_iter_ <= 17
