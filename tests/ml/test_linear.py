"""Tests for the linear model family (elastic net, ridge, robust fits)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ModelNotTrainedError
from repro.ml.linear import (
    ElasticNet,
    LeastAbsoluteRegressor,
    LinearRegressor,
    MedianAbsoluteRegressor,
)


def _linear_data(n=200, d=8, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = np.zeros(d)
    w[:3] = [3.0, -2.0, 1.0]
    y = x @ w + 5.0 + noise * rng.normal(size=n)
    return x, y, w


class TestElasticNet:
    def test_recovers_linear_relationship(self):
        x, y, _ = _linear_data()
        model = ElasticNet(alpha=0.001).fit(x, y)
        mse = float(np.mean((model.predict(x) - y) ** 2))
        assert mse < 0.1

    def test_l1_produces_sparsity(self):
        x, y, _ = _linear_data(noise=0.01)
        dense = ElasticNet(alpha=1e-5, l1_ratio=0.0).fit(x, y)
        sparse = ElasticNet(alpha=0.5, l1_ratio=1.0).fit(x, y)
        assert len(sparse.selected_features) < len(dense.selected_features)

    def test_strong_penalty_shrinks_to_intercept(self):
        x, y, _ = _linear_data()
        model = ElasticNet(alpha=1e6, l1_ratio=1.0).fit(x, y)
        assert np.allclose(model.coef_, 0.0)
        assert model.intercept_ == pytest.approx(float(y.mean()))

    def test_predict_before_fit_raises(self):
        with pytest.raises(ModelNotTrainedError):
            ElasticNet().predict(np.zeros((1, 3)))

    def test_coefficients_raw_roundtrip(self):
        x, y, _ = _linear_data()
        model = ElasticNet(alpha=0.01).fit(x, y)
        w, b = model.coefficients_raw()
        manual = x @ w + b
        assert np.allclose(manual, model.predict(x), atol=1e-8)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            ElasticNet(alpha=-1)
        with pytest.raises(ValueError):
            ElasticNet(l1_ratio=2.0)

    def test_rejects_nan_inputs(self):
        x = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError):
            ElasticNet().fit(x, np.array([1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ElasticNet().fit(np.zeros((3, 2)), np.zeros(4))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=5, max_value=40), st.integers(min_value=1, max_value=6))
    def test_never_worse_than_intercept_only(self, n, d):
        """Training fit must be at least as good as predicting the mean."""
        rng = np.random.default_rng(n * 7 + d)
        x = rng.normal(size=(n, d))
        y = rng.normal(size=n)
        model = ElasticNet(alpha=0.01).fit(x, y)
        fit_mse = float(np.mean((model.predict(x) - y) ** 2))
        mean_mse = float(np.mean((y - y.mean()) ** 2))
        assert fit_mse <= mean_mse + 1e-6


class TestLinearRegressor:
    def test_exact_on_noiseless(self):
        x, y, _ = _linear_data(noise=0.0)
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-6)

    def test_sample_weights_prioritize(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 2.0, 100.0])  # last point is an outlier
        weights = np.array([1.0, 1.0, 1.0, 1e-9])
        model = LinearRegressor().fit(x, y, sample_weight=weights)
        assert model.predict(np.array([[3.0]]))[0] == pytest.approx(3.0, abs=0.1)


class TestRobustRegressors:
    def test_lad_resists_outliers(self):
        x, y, _ = _linear_data(n=100, noise=0.01, seed=1)
        y_corrupt = y.copy()
        y_corrupt[:5] += 1000.0
        lad = LeastAbsoluteRegressor().fit(x, y_corrupt)
        ols = LinearRegressor().fit(x, y_corrupt)
        clean_mask = np.ones(len(y), dtype=bool)
        clean_mask[:5] = False
        lad_err = np.abs(lad.predict(x[clean_mask]) - y[clean_mask]).mean()
        ols_err = np.abs(ols.predict(x[clean_mask]) - y[clean_mask]).mean()
        assert lad_err < ols_err

    def test_median_regressor_fits_majority(self):
        x, y, _ = _linear_data(n=100, noise=0.01, seed=2)
        y_corrupt = y.copy()
        y_corrupt[:20] *= 10
        model = MedianAbsoluteRegressor().fit(x, y_corrupt)
        residuals = np.abs(model.predict(x[20:]) - y[20:])
        assert float(np.median(residuals)) < 1.0

    def test_median_regressor_validation(self):
        with pytest.raises(ValueError):
            MedianAbsoluteRegressor(keep_fraction=0.05)
