"""Tests for the MLP, loss functions, preprocessing, and cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.base import clone_regressor
from repro.ml.losses import (
    LOSS_FUNCTIONS,
    mean_absolute_error,
    mean_squared_error,
    mean_squared_log_error,
    median_absolute_error,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.model_selection import KFold, cross_validate
from repro.ml.preprocessing import StandardScaler
from repro.ml.proximal import ElasticNetMSLE


class TestMLP:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.abs(x[:, 0] * 4) + 2.0
        mlp = MLPRegressor(hidden_size=30, epochs=200, log_target=False, seed=0).fit(x, y)
        mse = float(np.mean((mlp.predict(x) - y) ** 2))
        assert mse < 0.5

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        y = np.abs(rng.normal(size=50))
        a = MLPRegressor(epochs=20, seed=5).fit(x, y).predict(x)
        b = MLPRegressor(epochs=20, seed=5).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_log_target_nonnegative(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 3))
        y = np.abs(rng.normal(5, 3, size=60))
        mlp = MLPRegressor(epochs=30, log_target=True, seed=0).fit(x, y)
        assert (mlp.predict(x) >= 0).all()

    def test_hidden_size_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_size=0)


class TestLosses:
    def test_msle_matches_paper_definition(self):
        p, a = np.array([np.e - 1.0]), np.array([0.0])
        assert mean_squared_log_error(p, a) == pytest.approx(1.0)

    def test_msle_penalizes_under_more_than_over(self):
        actual = np.array([100.0])
        under = mean_squared_log_error(np.array([50.0]), actual)
        over = mean_squared_log_error(np.array([150.0]), actual)
        assert under > over

    def test_mse_mae_medae_basics(self):
        p = np.array([1.0, 2.0, 3.0])
        a = np.array([1.0, 2.0, 7.0])
        assert mean_squared_error(p, a) == pytest.approx(16.0 / 3.0)
        assert mean_absolute_error(p, a) == pytest.approx(4.0 / 3.0)
        assert median_absolute_error(p, a) == 0.0

    def test_registry_complete(self):
        assert set(LOSS_FUNCTIONS) == {
            "median_absolute_error",
            "mean_absolute_error",
            "mean_squared_error",
            "mean_squared_log_error",
        }

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_msle_negative_actual_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_log_error(np.array([1.0]), np.array([-1.0]))


class TestScaler:
    def test_zero_mean_unit_variance(self):
        x = np.random.default_rng(0).normal(5, 3, size=(100, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1, atol=1e-9)

    def test_constant_columns_pass_through(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestKFoldAndCv:
    def test_folds_partition_everything(self):
        seen = []
        for _, test_idx in KFold(n_splits=5, seed=0).split(23):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_train_test_disjoint(self):
        for train_idx, test_idx in KFold(n_splits=4, seed=1).split(20):
            assert not set(train_idx) & set(test_idx)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_cross_validate_reasonable(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(1, 100, size=(100, 2))
        y = x[:, 0] * 2 + 1
        result = cross_validate(ElasticNetMSLE(alpha=0.001), x, y, n_splits=5)
        assert result.median_error_pct < 20.0
        assert result.pearson > 0.9

    def test_clone_resets_state(self):
        model = ElasticNetMSLE().fit(np.ones((5, 2)), np.ones(5))
        cloned = clone_regressor(model)
        with pytest.raises(RuntimeError):
            cloned.coefficients_raw()
