"""Tests for workload generation: fragments, templates, catalogs, jobs."""

from __future__ import annotations

import pytest

from repro.plan.logical import LogicalOpType, normalize_input_name
from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.templates import JobSpec, instantiate, table_name_for_day


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(
        ClusterWorkloadConfig(
            cluster_name="clusterx", n_tables=6, n_fragments=10, n_templates=12, seed=3
        )
    )


class TestCatalogs:
    def test_dated_names_normalize_together(self):
        d1 = table_name_for_day("clusterx_src_a", 1)
        d2 = table_name_for_day("clusterx_src_a", 2)
        assert d1 != d2
        assert normalize_input_name(d1) == normalize_input_name(d2)

    def test_distinct_tables_stay_distinct_after_normalization(self, generator):
        names = {
            normalize_input_name(table_name_for_day(base, 1))
            for base, _, _ in generator.base_tables
        }
        assert len(names) == len(generator.base_tables)

    def test_day_drift_changes_sizes(self, generator):
        c1 = generator.catalog_for_day(1)
        c2 = generator.catalog_for_day(4)
        t1 = c1.table_names[0]
        t2 = c2.table_names[0]
        assert c1.stats(t1).row_count != c2.stats(t2).row_count

    def test_catalog_deterministic(self, generator):
        a = generator.catalog_for_day(2)
        b = generator.catalog_for_day(2)
        assert [a.stats(t).row_count for t in a.table_names] == [
            b.stats(t).row_count for t in b.table_names
        ]

    def test_drift_bounded(self, generator):
        """Day scaling stays within the ~2x envelope of Figure 2."""
        for base, _, _ in generator.base_tables:
            scales = [generator.day_scale(base, day) for day in range(1, 30)]
            assert max(scales) / min(scales) < 4.0


class TestJobGeneration:
    def test_recurring_dominates(self, generator):
        jobs = generator.jobs_for_day(1)
        adhoc = [j for j in jobs if j.is_adhoc]
        assert 0 < len(adhoc) < 0.3 * len(jobs)

    def test_jobs_deterministic(self, generator):
        ids_a = [j.job_id for j in generator.jobs_for_day(2)]
        ids_b = [j.job_id for j in generator.jobs_for_day(2)]
        assert ids_a == ids_b

    def test_job_ids_unique(self, generator):
        ids = [j.job_id for j in generator.jobs_for_day(1)]
        assert len(ids) == len(set(ids))

    def test_templates_mostly_recur_across_days(self, generator):
        t1 = {j.template.template_id for j in generator.jobs_for_day(1) if not j.is_adhoc}
        t2 = {j.template.template_id for j in generator.jobs_for_day(2) if not j.is_adhoc}
        # Template churn replaces only a small fraction per day.
        assert len(t1 & t2) >= 0.8 * len(t1)

    def test_template_churn_accumulates(self, generator):
        t1 = {j.template.template_id for j in generator.jobs_for_day(1) if not j.is_adhoc}
        t60 = {j.template.template_id for j in generator.jobs_for_day(60) if not j.is_adhoc}
        # Over two months, a visible share of templates must have churned.
        assert len(t1 & t60) < len(t1)

    def test_template_version_monotone(self, generator):
        for slot in range(generator.config.n_templates):
            versions = [generator.template_version(slot, day) for day in (1, 10, 30)]
            assert versions == sorted(versions)

    def test_adhoc_templates_are_one_off(self, generator):
        a1 = {j.template.template_id for j in generator.jobs_for_day(1) if j.is_adhoc}
        a2 = {j.template.template_id for j in generator.jobs_for_day(2) if j.is_adhoc}
        assert not (a1 & a2)


class TestInstantiation:
    def test_plan_builds_and_ends_in_output(self, generator):
        job = generator.jobs_for_day(1)[0]
        plan = instantiate(job, generator.catalog_for_day(1))
        assert plan.op_type is LogicalOpType.OUTPUT
        assert plan.true_card >= 0

    def test_instantiation_deterministic(self, generator):
        job = generator.jobs_for_day(1)[0]
        catalog = generator.catalog_for_day(1)
        p1 = instantiate(job, catalog)
        p2 = instantiate(job, catalog)
        assert p1.describe() == p2.describe()

    def test_different_instances_differ_in_params(self, generator):
        template = generator.templates[0]
        catalog = generator.catalog_for_day(1)
        plans = [
            instantiate(
                JobSpec(job_id=f"j{i}", template=template, day=1, instance_seed=i),
                catalog,
            )
            for i in range(2)
        ]
        cards = [[n.true_card for n in p.walk()] for p in plans]
        tags = [[n.template_tag for n in p.walk()] for p in plans]
        assert tags[0] == tags[1]  # same template structure
        assert cards[0] != cards[1]  # different parameters somewhere in the plan

    def test_fragment_sharing_across_templates(self, generator):
        """At least two recurring templates must share a fragment."""
        fragment_users: dict[int, set[str]] = {}
        for template in generator.templates:
            for fragment in template.fragments:
                fragment_users.setdefault(fragment.fragment_id, set()).add(
                    template.template_id
                )
        assert any(len(users) >= 2 for users in fragment_users.values())

    def test_shared_fragments_produce_shared_tags(self, generator):
        shared = None
        for template_a in generator.templates:
            for template_b in generator.templates:
                if template_a is template_b:
                    continue
                common = {f.fragment_id for f in template_a.fragments} & {
                    f.fragment_id for f in template_b.fragments
                }
                if common:
                    shared = (template_a, template_b)
                    break
            if shared:
                break
        assert shared is not None
        catalog = generator.catalog_for_day(1)
        tags = []
        for template in shared:
            plan = instantiate(
                JobSpec(job_id="x", template=template, day=1, instance_seed=1), catalog
            )
            tags.append({n.template_tag for n in plan.walk()})
        assert tags[0] & tags[1]  # overlapping subexpression tags
