"""Cross-process determinism of workload generation and execution.

Workload generation must not depend on ``PYTHONHASHSEED``: the same
``runner.run_days(generator, days=...)`` has to yield identical operator
latencies, features, and signatures in every process, or benchmark numbers
(and any cached run log) silently drift between runs.

The historical bug lived in the planner's passthrough implementation: the
two candidate requirement pairs were held in a ``set``, whose salted-hash
iteration order decided cost *ties* — flipping plan shapes (and with them
every simulated latency) across processes.  In-process determinism tests
cannot catch this, so this one spawns real subprocesses with different hash
seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Runs one small day-1 workload (the historical tie case lives in its
#: template pool) and fingerprints every record field that a plan-shape
#: change would perturb.  ``{method}`` selects the execution path: the
#: batched engine (``run_days``) or the retained scalar reference
#: (``run_days_reference``).
_SCRIPT = """
import hashlib
from repro.experiments.shared import cluster_spec, workload_config
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadRunner

generator = WorkloadGenerator(workload_config("cluster1", "small", 0))
runner = WorkloadRunner(cluster=cluster_spec("cluster1"), seed=0)
log = runner.{method}(generator, days=[1])
payload = repr(
    [
        (r.job_id, r.actual_latency, r.features, r.signatures)
        for r in log.operator_records()
    ]
)
print(hashlib.sha256(payload.encode()).hexdigest())
"""


def _run_with_hash_seed(hash_seed: str, method: str = "run_days") -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT.format(method=method)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return result.stdout.strip()


def test_run_log_identical_across_hash_seeds():
    # 42 is the seed that historically produced a different plan shape for
    # template t0004 than seed 0 did.  run_days is the batched engine, so
    # this also pins the skeleton planner + vectorized ground truth against
    # salted-hash iteration-order leaks.
    digest_a = _run_with_hash_seed("0")
    digest_b = _run_with_hash_seed("42")
    assert digest_a == digest_b, (
        "run_days produced different operator records under different "
        "PYTHONHASHSEED values - some set/dict iteration order is leaking "
        "into plan or latency decisions"
    )


def test_batched_and_reference_agree_across_hash_seeds():
    """The two paths agree with *each other* regardless of hash seed."""
    batched = _run_with_hash_seed("17", method="run_days")
    reference = _run_with_hash_seed("99", method="run_days_reference")
    assert batched == reference, (
        "batched engine and scalar reference diverged across processes "
        "with different PYTHONHASHSEED values"
    )


#: Trains a tiny Cleo on a 3-day cluster-4 workload, then re-plans the test
#: day's jobs with learned costs + partition exploration through either the
#: batched frontier-pricing path or the retained scalar planner
#: (``{batched}``), and fingerprints everything a plan-choice divergence
#: would perturb: shapes, partition counts, estimated costs, candidate
#: counts.
_PLAN_SCRIPT = """
import hashlib
from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.core.trainer import CleoTrainer
from repro.experiments.shared import cluster_spec, workload_config
from repro.optimizer.partition import SamplingStrategy
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadRunner
from repro.workload.templates import instantiate

generator = WorkloadGenerator(workload_config("cluster4", "tiny", 0))
runner = WorkloadRunner(cluster=cluster_spec("cluster4"), seed=0)
log = runner.run_days(generator, days=[1, 2, 3])
predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
planner = QueryPlanner(
    CleoCostModel(predictor, batched={batched}),
    CardinalityEstimator(),
    PlannerConfig(partition_strategy=SamplingStrategy(scheme="geometric")),
)
catalog = generator.catalog_for_day(3)
payload = []
for job in generator.jobs_for_day(3):
    planner.jitter_salt = job.job_id
    planned = planner.plan(instantiate(job, catalog))
    payload.append(
        (
            job.job_id,
            [(op.op_type.value, op.partition_count) for op in planned.plan.walk()],
            planned.estimated_cost,
            planned.candidates_considered,
        )
    )
print(hashlib.sha256(repr(payload).encode()).hexdigest())
"""


def _plan_with_hash_seed(hash_seed: str, batched: bool) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _PLAN_SCRIPT.format(batched=batched)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return result.stdout.strip()


def test_batched_learned_planning_identical_across_hash_seeds():
    """Batched learned-cost planning is hash-seed independent."""
    digest_a = _plan_with_hash_seed("0", batched=True)
    digest_b = _plan_with_hash_seed("42", batched=True)
    assert digest_a == digest_b, (
        "batched learned-cost planning chose different plans under "
        "different PYTHONHASHSEED values - some set/dict iteration order "
        "is leaking into frontier pricing or sweep decisions"
    )


def test_batched_and_scalar_learned_planning_agree_across_hash_seeds():
    """Batched and scalar learned-cost planners agree across processes."""
    batched = _plan_with_hash_seed("13", batched=True)
    scalar = _plan_with_hash_seed("7", batched=False)
    assert batched == scalar, (
        "batched frontier pricing and the scalar predict_operator planner "
        "diverged across processes with different PYTHONHASHSEED values"
    )


#: Trains the same tiny Cleo, then replans the test day's jobs — each
#: replicated into three instances under distinct jitter salts, the
#: recurring-fleet shape — through either the fleet skeleton-replay driver
#: (``repro.optimizer.replan``) or the reference per-job ``QueryPlanner``
#: loop (``{mode}``), and fingerprints shapes, partition counts, estimated
#: costs, and candidate counts.
_REPLAN_SCRIPT = """
import hashlib
from repro.cardinality.estimator import CardinalityEstimator
from repro.core.cost_model import CleoCostModel
from repro.core.trainer import CleoTrainer
from repro.experiments.shared import cluster_spec, workload_config
from repro.optimizer.planner import PlannerConfig, QueryPlanner
from repro.optimizer.replan import ReplanJob, replan_jobs
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadRunner
from repro.workload.templates import instantiate

generator = WorkloadGenerator(workload_config("cluster4", "tiny", 0))
runner = WorkloadRunner(cluster=cluster_spec("cluster4"), seed=0)
log = runner.run_days(generator, days=[1, 2, 3])
predictor = CleoTrainer().train(log, individual_days=[1, 2], combined_days=[2])
catalog = generator.catalog_for_day(3)
jobs = [
    ReplanJob(
        job.job_id if k == 0 else f"{{job.job_id}}/rep{{k}}",
        job.template.template_id,
        job.day,
        instantiate(job, catalog),
    )
    for job in generator.jobs_for_day(3)
    for k in range(3)
]
mode = "{mode}"
if mode == "fleet":
    planned = replan_jobs(jobs, CleoCostModel(predictor), CardinalityEstimator())
else:
    planner = QueryPlanner(
        CleoCostModel(predictor), CardinalityEstimator(), PlannerConfig()
    )
    planned = []
    for job in jobs:
        planner.jitter_salt = job.salt
        planned.append(planner.plan(job.logical))
payload = [
    (
        job.job_id,
        [(op.op_type.value, op.partition_count) for op in p.plan.walk()],
        p.estimated_cost,
        p.candidates_considered,
    )
    for job, p in zip(jobs, planned)
]
print(hashlib.sha256(repr(payload).encode()).hexdigest())
"""


def _replan_with_hash_seed(hash_seed: str, mode: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _REPLAN_SCRIPT.format(mode=mode)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return result.stdout.strip()


def test_fleet_replay_identical_across_hash_seeds():
    """Learned-cost skeleton replay is hash-seed independent."""
    digest_a = _replan_with_hash_seed("0", mode="fleet")
    digest_b = _replan_with_hash_seed("42", mode="fleet")
    assert digest_a == digest_b, (
        "fleet skeleton replay chose different plans under different "
        "PYTHONHASHSEED values - some set/dict iteration order is leaking "
        "into the replay's costing or lockstep batching"
    )


def test_fleet_replay_and_reference_agree_across_hash_seeds():
    """The fleet replay agrees with the reference planner across processes."""
    fleet = _replan_with_hash_seed("13", mode="fleet")
    reference = _replan_with_hash_seed("7", mode="reference")
    assert fleet == reference, (
        "fleet skeleton replay and the per-job QueryPlanner loop diverged "
        "across processes with different PYTHONHASHSEED values"
    )
