"""Bitwise parity: batched workload engine vs the retained scalar path.

The batched engine (skeleton planner + vectorized ground truth + columnar
RunLog ingest) must produce *exactly* the log the scalar reference produces
— same operator latencies, features, signatures, and job records, down to
the last float bit.  Anything less silently shifts every downstream
benchmark and trained model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.execution.hardware import DEFAULT_CLUSTERS
from repro.features.table import FeatureTable
from repro.workload.generator import ClusterWorkloadConfig, WorkloadGenerator
from repro.workload.runner import WorkloadRunner


def _config(cluster_name: str, seed: int) -> ClusterWorkloadConfig:
    return ClusterWorkloadConfig(
        cluster_name=cluster_name,
        n_tables=5,
        n_fragments=9,
        n_templates=14,
        adhoc_fraction=0.12,
        seed=seed,
    )


def _run(cluster, seed: int, days, reference: bool, **runner_kwargs):
    generator = WorkloadGenerator(_config(cluster.name, seed))
    runner = WorkloadRunner(cluster=cluster, seed=seed, **runner_kwargs)
    run = runner.run_days_reference if reference else runner.run_days
    return runner, run(generator, days)


@pytest.mark.parametrize("cluster", DEFAULT_CLUSTERS, ids=lambda c: c.name)
def test_batched_log_bitwise_identical_per_cluster(cluster):
    """Every record field matches exactly across all four clusters."""
    _, ref_log = _run(cluster, seed=7, days=[1, 2], reference=True)
    _, bat_log = _run(cluster, seed=7, days=[1, 2], reference=False)

    assert len(ref_log) == len(bat_log)
    for ref_job, bat_job in zip(ref_log.jobs, bat_log.jobs):
        # Dataclass equality covers every field, including the nested
        # operator records (features, signatures, latencies) bit for bit.
        assert ref_job == bat_job


def test_batched_path_is_actually_used():
    runner, _ = _run(DEFAULT_CLUSTERS[0], seed=3, days=[1], reference=False)
    assert runner.batched_supported
    assert runner._skeleton_planner is not None
    assert runner._engine is not None


def test_multi_day_parity_including_template_churn():
    """Days beyond the first exercise catalog drift and template churn."""
    cluster = DEFAULT_CLUSTERS[1]
    _, ref_log = _run(cluster, seed=11, days=range(1, 5), reference=True)
    _, bat_log = _run(cluster, seed=11, days=range(1, 5), reference=False)
    assert ref_log.jobs == bat_log.jobs


def test_columnar_table_matches_from_records_rebuild():
    """The adopted FeatureTable equals a from_records materialization."""
    cluster = DEFAULT_CLUSTERS[2]
    _, log = _run(cluster, seed=5, days=[1, 2], reference=False)
    adopted = log.to_table()
    rebuilt = FeatureTable.from_records(list(log.operator_records()))
    for column in (
        "input_card",
        "base_card",
        "output_card",
        "avg_row_bytes",
        "partition_count",
        "input_enc",
        "params_enc",
        "logical_count",
        "depth",
        "latency",
        "day",
        "is_adhoc",
    ):
        a, b = getattr(adopted, column), getattr(rebuilt, column)
        assert a.dtype == b.dtype, column
        assert np.array_equal(a, b), column
    for name in ("strict", "approx", "input", "operator"):
        assert np.array_equal(adopted.signatures[name], rebuilt.signatures[name])
    assert adopted.cluster == rebuilt.cluster


def test_keep_plans_matches_reference_plans():
    """Materialized skeleton plans equal the reference planner's plans."""
    cluster = DEFAULT_CLUSTERS[0]
    ref_runner, ref_log = _run(
        cluster, seed=9, days=[1], reference=True, keep_plans=True
    )
    bat_runner, bat_log = _run(
        cluster, seed=9, days=[1], reference=False, keep_plans=True
    )
    assert set(ref_runner.plans) == set(bat_runner.plans)
    for job_id, ref_plan in ref_runner.plans.items():
        assert ref_plan.describe() == bat_runner.plans[job_id].describe()
    assert ref_log.jobs == bat_log.jobs


def test_runner_reuse_with_different_generator_stays_correct():
    """Template ids collide across generators; batched caches must not leak.

    Template ids (and fragment template tags) are only unique *within* one
    generator, so the skeleton and shape-statics caches reset when a runner
    sees a new generator.  The parity contract under reuse: a runner warmed
    on generator A must produce, for generator B, exactly what the scalar
    reference produces *on an equally warmed runner* — the shared simulator's
    hidden-multiplier cache is documented to assume one workload per
    instance, and that (pre-existing, scalar-path) semantic is preserved,
    not compounded, by the batched engine.
    """
    cluster = DEFAULT_CLUSTERS[0]

    def generators():
        return (
            WorkloadGenerator(_config(cluster.name, seed=0)),
            WorkloadGenerator(_config(cluster.name, seed=7)),
        )

    gen_a, gen_b = generators()
    scalar_runner = WorkloadRunner(cluster=cluster, seed=1)
    scalar_runner.run_days_reference(gen_a, [1])
    scalar_log = scalar_runner.run_days_reference(gen_b, [1])

    gen_a, gen_b = generators()
    batched_runner = WorkloadRunner(cluster=cluster, seed=1)
    batched_runner.run_days(gen_a, [1])  # warm the caches with A's templates
    batched_log = batched_runner.run_days(gen_b, [1])

    assert batched_log.jobs == scalar_log.jobs


def test_empty_day_set_yields_empty_log():
    cluster = DEFAULT_CLUSTERS[0]
    generator = WorkloadGenerator(_config(cluster.name, seed=1))
    runner = WorkloadRunner(cluster=cluster, seed=1)
    log = runner.run_days(generator, [])
    assert len(log) == 0
    assert len(log.to_table()) == 0


def test_non_stock_config_falls_back_to_reference():
    """A formula-overriding cost model disables the fast path, loudly.

    The gate is the ``supports_replay_costing`` capability, not the concrete
    class: only models whose pricing the replay cannot reproduce fall back.
    """
    import pytest

    from repro.cost.default_model import DefaultCostModel

    class OverriddenFormulaModel(DefaultCostModel):
        def operator_cost(self, op, estimator, partition_override=None):
            return 2.0 * super().operator_cost(op, estimator, partition_override)

    cluster = DEFAULT_CLUSTERS[3]
    generator = WorkloadGenerator(_config(cluster.name, 2))
    runner = WorkloadRunner(
        cluster=cluster, seed=2, cost_model=OverriddenFormulaModel()
    )
    assert not runner.batched_supported
    assert runner.last_run_used_batched is None
    with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
        log = runner.run_days(generator, [1])
    assert len(log) > 0
    assert runner._skeleton_planner is None
    assert runner.last_run_used_batched is False


def test_retuned_subclass_keeps_fast_path_with_parity():
    """Constants-only subclasses keep the fast path — and stay bit-exact.

    The old gate (``type(cost_model) is DefaultCostModel``) silently dropped
    any subclass to the scalar path; the capability flag keeps retuned
    models (formula intact, constants changed) on the batched engine.
    """
    from repro.cost.default_model import DefaultCostModel

    class TweakedModel(DefaultCostModel):
        inflation = 9.0

    cluster = DEFAULT_CLUSTERS[3]
    scalar_runner, ref_log = _run(
        cluster, seed=2, days=[1], reference=True, cost_model=TweakedModel()
    )
    batched_runner, bat_log = _run(
        cluster, seed=2, days=[1], reference=False, cost_model=TweakedModel()
    )
    assert batched_runner.batched_supported
    assert batched_runner.last_run_used_batched is True
    assert ref_log.jobs == bat_log.jobs


def test_tuned_cost_model_keeps_fast_path_with_parity():
    """TunedCostModel rides the stats-backed replay hook, bit-exact."""
    from repro.cost.tuned_model import TunedCostModel

    cluster = DEFAULT_CLUSTERS[1]
    _, ref_log = _run(
        cluster, seed=4, days=[1, 2], reference=True, cost_model=TunedCostModel()
    )
    batched_runner, bat_log = _run(
        cluster, seed=4, days=[1, 2], reference=False, cost_model=TunedCostModel()
    )
    assert batched_runner.batched_supported
    assert batched_runner.last_run_used_batched is True
    assert ref_log.jobs == bat_log.jobs


def test_stock_config_reports_batched_path():
    """The stock configuration takes the batched engine, silently."""
    import warnings

    cluster = DEFAULT_CLUSTERS[0]
    generator = WorkloadGenerator(_config(cluster.name, seed=3))
    runner = WorkloadRunner(cluster=cluster, seed=3)
    assert runner.batched_supported
    assert runner.last_run_used_batched is None
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning here is a regression
        log = runner.run_days(generator, [1])
    assert len(log) > 0
    assert runner.last_run_used_batched is True
    # A direct reference run does not warn and does not claim the flag.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reference = runner.run_days_reference(generator, [1])
    assert runner.last_run_used_batched is True
    assert len(reference) == len(log)
