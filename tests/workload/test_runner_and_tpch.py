"""Tests for the workload runner and the TPC-H query suite."""

from __future__ import annotations

import pytest

from repro.data.tpch import tpch_catalog
from repro.plan.logical import LogicalOpType
from repro.workload.tpch_queries import TpchQuerySet


class TestRunner:
    def test_log_covers_all_days(self, tiny_bundle):
        assert tiny_bundle.log.days == [1, 2, 3]

    def test_plans_kept_for_every_job(self, tiny_bundle):
        for job in tiny_bundle.log:
            assert job.job_id in tiny_bundle.runner.plans

    def test_records_align_with_plans(self, tiny_bundle):
        job = tiny_bundle.log.jobs[0]
        plan = tiny_bundle.runner.plans[job.job_id]
        assert plan.node_count == len(job.operators)

    def test_adhoc_flag_propagates(self, tiny_bundle):
        adhoc = tiny_bundle.log.filter(adhoc=True)
        assert len(adhoc) > 0
        assert all(job.is_adhoc for job in adhoc)
        assert all(r.is_adhoc for job in adhoc for r in job.operators)

    def test_latencies_positive(self, tiny_bundle):
        for job in tiny_bundle.log:
            assert job.latency_seconds > 0
            assert job.cpu_seconds > 0

    def test_partition_jitter_gives_p_diversity(self, tiny_bundle):
        """Within one recurring template, P must vary across instances —
        the signal partition exploration learns from."""
        from collections import defaultdict

        by_template: dict[tuple, set[int]] = defaultdict(set)
        for job in tiny_bundle.log.filter(adhoc=False):
            for record in job.operators:
                by_template[(record.signatures.strict,)].add(
                    int(record.features.partition_count)
                )
        multi = [counts for counts in by_template.values() if len(counts) > 1]
        assert len(multi) > len(by_template) * 0.2


class TestTpchQueries:
    @pytest.fixture(scope="class")
    def query_set(self):
        return TpchQuerySet(tpch_catalog(10.0), seed=1)

    def test_all_22_build(self, query_set):
        queries = query_set.all_queries(run=0)
        assert len(queries) == 22
        assert [q.query_id for q in queries] == list(range(1, 23))

    def test_plans_end_in_output(self, query_set):
        for query in query_set.all_queries(run=0):
            assert query.plan.op_type is LogicalOpType.OUTPUT

    def test_parameters_vary_across_runs(self, query_set):
        q6_a = query_set.query(6, run=0)
        q6_b = query_set.query(6, run=1)
        assert q6_a.params != q6_b.params
        assert q6_a.plan.true_card != q6_b.plan.true_card or True  # cards may collide

    def test_template_tags_stable_across_runs(self, query_set):
        tags_a = [n.template_tag for n in query_set.query(3, run=0).plan.walk()]
        tags_b = [n.template_tag for n in query_set.query(3, run=5).plan.walk()]
        assert tags_a == tags_b

    def test_cardinalities_scale_with_sf(self):
        small = TpchQuerySet(tpch_catalog(1.0), seed=1).query(1, run=0)
        large = TpchQuerySet(tpch_catalog(100.0), seed=1).query(1, run=0)
        small_leaf = max(n.true_card for n in small.plan.walk() if not n.children)
        large_leaf = max(n.true_card for n in large.plan.walk() if not n.children)
        assert large_leaf == pytest.approx(100 * small_leaf)

    def test_q1_group_count(self, query_set):
        q1 = query_set.query(1, run=0)
        aggs = [
            n for n in q1.plan.walk() if n.op_type is LogicalOpType.AGGREGATE
        ]
        assert aggs and aggs[0].true_card == 4  # returnflag x linestatus

    def test_invalid_query_number(self, query_set):
        with pytest.raises(ValueError):
            query_set.query(23)

    def test_q17_has_aggregate_join_shape(self, query_set):
        """Q17 (the paper's regression case) joins back an aggregate."""
        q17 = query_set.query(17, run=0)
        freq = q17.plan.op_type_frequencies()
        assert freq.get("Aggregate", 0) >= 2
        assert freq.get("Join", 0) >= 2

    def test_all_queries_optimizable(self, query_set, planner):
        for query in query_set.all_queries(run=2):
            planned = planner.plan(query.plan)
            assert planned.plan.node_count >= query.plan.node_count
