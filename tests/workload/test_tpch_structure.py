"""Table-driven structural expectations for all 22 TPC-H queries.

Each query's logical plan must contain the operator mix its SQL dictates
(number of joins, aggregates, sorts/top-k) and produce a plausible output
cardinality; these pin the query builders against accidental rewrites.
"""

from __future__ import annotations

import pytest

from repro.data.tpch import tpch_catalog
from repro.workload.tpch_queries import TpchQuerySet

#: query -> (min joins, min aggregates, has sort-or-topk, max output rows)
EXPECTED = {
    1: (0, 1, True, 10),
    2: (4, 1, True, 100),
    3: (2, 1, True, 10),
    4: (1, 1, True, 5),
    5: (5, 1, True, 25),
    6: (0, 1, False, 1),
    7: (3, 1, True, 200),
    8: (5, 1, True, 10),
    9: (5, 1, True, 200),
    10: (3, 1, True, 20),
    11: (2, 1, True, 1e7),
    12: (1, 1, True, 7),
    13: (1, 2, True, 100),
    14: (1, 1, False, 1),
    15: (1, 1, True, 1),
    16: (1, 1, True, 1e6),
    17: (2, 2, False, 1),
    18: (3, 2, True, 100),
    19: (1, 1, False, 1),
    20: (3, 1, True, 1e7),
    21: (3, 1, True, 100),
    22: (0, 1, True, 7),
}


@pytest.fixture(scope="module")
def query_set():
    return TpchQuerySet(tpch_catalog(100.0), seed=4)


@pytest.mark.parametrize("number", sorted(EXPECTED))
def test_query_structure(query_set, number):
    min_joins, min_aggs, has_order, max_output = EXPECTED[number]
    query = query_set.query(number, run=0)
    freq = query.plan.op_type_frequencies()
    assert freq.get("Join", 0) >= min_joins, f"Q{number} joins"
    assert freq.get("Aggregate", 0) >= min_aggs, f"Q{number} aggregates"
    if has_order:
        assert freq.get("Sort", 0) + freq.get("TopK", 0) >= 1, f"Q{number} ordering"
    assert query.plan.true_card <= max_output, f"Q{number} output size"


@pytest.mark.parametrize("number", sorted(EXPECTED))
def test_query_cardinalities_positive_and_bounded(query_set, number):
    query = query_set.query(number, run=1)
    base = query.plan.base_card
    for node in query.plan.walk():
        assert node.true_card >= 0
        # No intermediate result should exceed a plausible blow-up of the
        # base input (guards against mis-specified join fan-outs).
        assert node.true_card <= 50 * base


def test_all_queries_have_distinct_tags(query_set):
    """Template tags must never collide across different queries."""
    seen: dict[str, int] = {}
    for query in query_set.all_queries(run=0):
        for node in query.plan.walk():
            if node.template_tag.startswith("tpch:get:"):
                continue  # scans are intentionally shared
            previous = seen.setdefault(node.template_tag, query.query_id)
            assert previous == query.query_id, node.template_tag
