"""Tests for workload analysis utilities."""

from __future__ import annotations

import pytest

from repro.core.config import ModelKind
from repro.workload.analysis import (
    coverage_upper_bound,
    profile_workload,
    subexpression_frequencies,
    template_overlap,
)


class TestProfileWorkload:
    def test_counts_consistent(self, tiny_bundle):
        profile = profile_workload(tiny_bundle.log)
        assert profile.total_jobs == len(tiny_bundle.log)
        assert profile.recurring_jobs <= profile.total_jobs
        assert profile.common_subexpressions <= profile.total_subexpressions
        assert profile.trainable_subexpressions <= profile.common_subexpressions

    def test_recurring_dominates(self, tiny_bundle):
        profile = profile_workload(tiny_bundle.log)
        assert profile.recurring_fraction > 0.7

    def test_commonality_high(self, tiny_bundle):
        """The property that makes learning worthwhile (Figure 9)."""
        profile = profile_workload(tiny_bundle.log)
        assert profile.common_fraction > 0.5

    def test_min_samples_monotone(self, tiny_bundle):
        loose = profile_workload(tiny_bundle.log, min_samples=2)
        strict = profile_workload(tiny_bundle.log, min_samples=10)
        assert strict.trainable_subexpressions <= loose.trainable_subexpressions


class TestFrequenciesAndOverlap:
    def test_frequencies_sum_to_operator_count(self, tiny_bundle):
        frequencies = subexpression_frequencies(tiny_bundle.log)
        assert sum(frequencies.values()) == tiny_bundle.log.operator_count

    def test_template_overlap_near_one_adjacent_days(self, tiny_bundle):
        overlap = template_overlap(tiny_bundle.log, 1, 2)
        assert 0.7 <= overlap <= 1.0

    def test_template_overlap_self(self, tiny_bundle):
        assert template_overlap(tiny_bundle.log, 1, 1) == 1.0


class TestCoverageUpperBound:
    def test_bound_above_trained_coverage(self, tiny_bundle, tiny_predictor):
        train = tiny_bundle.log.filter(days=[1, 2])
        test = tiny_bundle.test_log()
        bound = coverage_upper_bound(train, test)
        trained = tiny_predictor.coverage_fraction(
            ModelKind.OP_SUBGRAPH, list(test.operator_records())
        )
        assert trained <= bound + 1e-9

    def test_self_coverage_total(self, tiny_bundle):
        log = tiny_bundle.log
        assert coverage_upper_bound(log, log) == pytest.approx(1.0)

    def test_disjoint_coverage_low(self, tiny_bundle):
        from repro.execution.runtime_log import RunLog

        empty = RunLog()
        assert coverage_upper_bound(empty, tiny_bundle.log) == 0.0
