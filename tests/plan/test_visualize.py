"""Tests for plan visualization helpers."""

from __future__ import annotations

from repro.plan.physical import PhysOpType
from repro.plan.visualize import diff_plans, render_stages, render_tree, to_dot


class TestRenderTree:
    def test_contains_every_operator(self, physical_join_plan):
        text = render_tree(physical_join_plan)
        for op in physical_join_plan.walk():
            assert op.op_type.value in text

    def test_line_count_matches_nodes(self, physical_join_plan):
        text = render_tree(physical_join_plan)
        assert len(text.splitlines()) == physical_join_plan.node_count

    def test_cards_toggle(self, physical_simple_plan):
        with_cards = render_tree(physical_simple_plan, show_cards=True)
        without = render_tree(physical_simple_plan, show_cards=False)
        assert "rows=" in with_cards and "rows=" not in without


class TestRenderStages:
    def test_one_line_per_stage(self, physical_join_plan):
        from repro.plan.stages import build_stage_graph

        text = render_stages(physical_join_plan)
        assert len(text.splitlines()) == len(build_stage_graph(physical_join_plan).stages)

    def test_dependencies_rendered(self, physical_join_plan):
        text = render_stages(physical_join_plan)
        assert "after [" in text


class TestDot:
    def test_valid_dot_structure(self, physical_join_plan):
        dot = to_dot(physical_join_plan)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == sum(len(op.children) for op in physical_join_plan.walk())

    def test_stage_clusters(self, physical_join_plan):
        from repro.plan.stages import build_stage_graph

        dot = to_dot(physical_join_plan)
        n_stages = len(build_stage_graph(physical_join_plan).stages)
        assert dot.count("subgraph cluster_stage") == n_stages


class TestDiffPlans:
    def test_identical_plans_no_changes(self, physical_simple_plan):
        assert diff_plans(physical_simple_plan, physical_simple_plan) == []

    def test_operator_changes_reported(self, physical_join_plan, physical_simple_plan):
        changes = diff_plans(physical_join_plan, physical_simple_plan)
        assert changes

    def test_partition_change_reported(self, physical_simple_plan):
        from repro.optimizer.partition import optimize_partitions  # noqa: F401

        rebuilt = physical_simple_plan
        # Rebuild the whole tree with shifted partition counts on one stage.
        def bump(op):
            children = tuple(bump(c) for c in op.children)
            count = op.partition_count + (3 if op.op_type is PhysOpType.EXTRACT else 0)
            from repro.plan.physical import PhysicalOp

            return PhysicalOp(
                op_type=op.op_type,
                children=children,
                logical=op.logical,
                partition_count=count if not children else (
                    count if op.is_partitioning else children[0].partition_count
                ),
                partitioning=op.partitioning,
                sorting=op.sorting,
                exchange_mode=op.exchange_mode,
                sort_keys=op.sort_keys,
            )

        changes = diff_plans(physical_simple_plan, bump(rebuilt))
        assert any("partitions" in c for c in changes)
