"""Tests for the four signature kinds and the one-pass bundle computation."""

from __future__ import annotations

from repro.plan.signatures import (
    SignatureBundle,
    approx_signature,
    compute_signature_bundles,
    input_signature,
    operator_signature,
    strict_signature,
)


class TestStrictSignature:
    def test_deterministic(self, physical_join_plan):
        assert strict_signature(physical_join_plan) == strict_signature(physical_join_plan)

    def test_recurring_instances_share_signature(self, catalog, planner):
        """Same template on a different day (different sizes) -> same key."""
        from repro.plan.builder import PlanBuilder

        scaled = catalog.scaled(1.7)
        plans = []
        for cat in (catalog, scaled):
            b = PlanBuilder(cat)
            logical = b.output(
                b.filter(b.scan("events_2024_01_01"), "value", 0.1, tag="t:f"), name="o"
            )
            plans.append(planner.plan(logical).plan)
        assert strict_signature(plans[0]) == strict_signature(plans[1])

    def test_different_structure_different_signature(
        self, physical_join_plan, physical_simple_plan
    ):
        assert strict_signature(physical_join_plan) != strict_signature(physical_simple_plan)

    def test_signature_ignores_partition_count(self, physical_simple_plan):
        rebuilt = physical_simple_plan.with_partition_count(
            physical_simple_plan.partition_count + 5
        )
        assert strict_signature(rebuilt) == strict_signature(physical_simple_plan)


class TestApproxSignature:
    def test_differs_from_strict_keyspace(self, physical_join_plan):
        # Approx and strict signatures are in different hash namespaces.
        assert approx_signature(physical_join_plan) != strict_signature(physical_join_plan)

    def test_same_root_same_freq_same_inputs_match(self, builder, planner):
        """Reordered unary operators below the root map to the same approx key."""
        scan1 = builder.filter(
            builder.project(builder.scan("events_2024_01_01"), tag="t:p"), "v", 0.5, tag="t:f"
        )
        scan2 = builder.project(
            builder.filter(builder.scan("events_2024_01_01"), "v", 0.5, tag="t:f"), tag="t:p"
        )
        agg1 = builder.aggregate(scan1, keys=("user_id",), group_count=10, tag="t:a")
        agg2 = builder.aggregate(scan2, keys=("user_id",), group_count=10, tag="t:a")
        p1 = planner.plan(builder.output(agg1, name="o", tag="t:o")).plan
        p2 = planner.plan(builder.output(agg2, name="o", tag="t:o")).plan
        assert strict_signature(p1) != strict_signature(p2)
        assert approx_signature(p1) == approx_signature(p2)


class TestInputAndOperatorSignatures:
    def test_input_signature_depends_on_inputs(self, builder, planner):
        p1 = planner.plan(
            builder.output(builder.scan("events_2024_01_01"), name="o", tag="t:o")
        ).plan
        p2 = planner.plan(
            builder.output(builder.scan("users_2024_01_01"), name="o", tag="t:o")
        ).plan
        assert input_signature(p1) != input_signature(p2)
        assert operator_signature(p1) == operator_signature(p2)

    def test_operator_signature_by_type_only(self, physical_join_plan):
        sigs = {}
        for op in physical_join_plan.walk():
            sigs.setdefault(op.op_type, set()).add(operator_signature(op))
        for values in sigs.values():
            assert len(values) == 1


class TestBundleComputation:
    def test_bundles_match_individual_functions(self, physical_join_plan):
        bundles = compute_signature_bundles(physical_join_plan)
        for op in physical_join_plan.walk():
            bundle = bundles[id(op)]
            assert bundle.strict == strict_signature(op)
            assert bundle.approx == approx_signature(op)
            assert bundle.input == input_signature(op)
            assert bundle.operator == operator_signature(op)

    def test_bundle_of_equals_computed(self, physical_simple_plan):
        bundles = compute_signature_bundles(physical_simple_plan)
        assert bundles[id(physical_simple_plan)] == SignatureBundle.of(physical_simple_plan)

    def test_all_nodes_covered(self, physical_join_plan):
        bundles = compute_signature_bundles(physical_join_plan)
        assert len(bundles) == physical_join_plan.node_count
