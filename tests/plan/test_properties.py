"""Tests for partitioning/sort properties and their satisfaction rules."""

from __future__ import annotations

import pytest

from repro.plan.properties import Partitioning, PartitionScheme, SortOrder


class TestPartitioning:
    def test_hash_requires_columns(self):
        with pytest.raises(ValueError):
            Partitioning(PartitionScheme.HASH)

    def test_non_hash_rejects_columns(self):
        with pytest.raises(ValueError):
            Partitioning(PartitionScheme.RANDOM, ("a",))

    def test_hash_columns_sorted(self):
        assert Partitioning.hash("b", "a").columns == ("a", "b")

    def test_any_satisfied_by_everything(self):
        required = Partitioning.any()
        for delivered in (
            Partitioning.random(),
            Partitioning.singleton(),
            Partitioning.hash("x"),
        ):
            assert delivered.satisfies(required)

    def test_singleton_satisfies_everything(self):
        delivered = Partitioning.singleton()
        for required in (
            Partitioning.any(),
            Partitioning.hash("x"),
            Partitioning.singleton(),
            Partitioning.random(),
        ):
            assert delivered.satisfies(required)

    def test_hash_exact_columns(self):
        assert Partitioning.hash("a").satisfies(Partitioning.hash("a"))
        assert not Partitioning.hash("a").satisfies(Partitioning.hash("b"))
        assert not Partitioning.hash("a").satisfies(Partitioning.hash("a", "b"))
        assert not Partitioning.hash("a", "b").satisfies(Partitioning.hash("a"))

    def test_hash_column_order_irrelevant(self):
        assert Partitioning.hash("a", "b").satisfies(Partitioning.hash("b", "a"))

    def test_random_does_not_satisfy_hash_or_singleton(self):
        assert not Partitioning.random().satisfies(Partitioning.hash("a"))
        assert not Partitioning.random().satisfies(Partitioning.singleton())

    def test_hash_satisfies_random(self):
        assert Partitioning.hash("a").satisfies(Partitioning.random())

    def test_describe(self):
        assert Partitioning.hash("a").describe() == "hash(a)"
        assert Partitioning.singleton().describe() == "singleton"


class TestSortOrder:
    def test_none_satisfied_always(self):
        assert SortOrder.none().satisfies(SortOrder.none())
        assert SortOrder.on("a").satisfies(SortOrder.none())

    def test_prefix_semantics(self):
        assert SortOrder.on("a", "b").satisfies(SortOrder.on("a"))
        assert not SortOrder.on("b", "a").satisfies(SortOrder.on("a"))
        assert not SortOrder.on("a").satisfies(SortOrder.on("a", "b"))

    def test_exact_match(self):
        assert SortOrder.on("a", "b").satisfies(SortOrder.on("a", "b"))

    def test_is_sorted(self):
        assert SortOrder.on("a").is_sorted
        assert not SortOrder.none().is_sorted

    def test_describe(self):
        assert SortOrder.on("a", "b").describe() == "sort(a,b)"
        assert SortOrder.none().describe() == "unsorted"
