"""Tests for physical plans, validation, and stage-graph construction."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidPlanError
from repro.plan.physical import (
    ExchangeMode,
    PhysOpType,
    PhysicalOp,
    validate_physical_plan,
)
from repro.plan.properties import Partitioning
from repro.plan.stages import build_stage_graph


def _extract(logical, partitions=4):
    return PhysicalOp(
        op_type=PhysOpType.EXTRACT,
        children=(),
        logical=logical,
        partition_count=partitions,
        partitioning=Partitioning.random(),
    )


class TestPhysicalOpValidation:
    def test_partition_count_positive(self, builder):
        scanned = builder.scan("users_2024_01_01")
        with pytest.raises(InvalidPlanError):
            _extract(scanned, partitions=0)

    def test_exchange_needs_mode(self, builder):
        scanned = builder.scan("users_2024_01_01")
        leaf = _extract(scanned)
        with pytest.raises(InvalidPlanError):
            PhysicalOp(
                op_type=PhysOpType.EXCHANGE,
                children=(leaf,),
                logical=None,
                partition_count=2,
                partitioning=Partitioning.random(),
            )

    def test_extract_must_be_leaf(self, builder):
        scanned = builder.scan("users_2024_01_01")
        leaf = _extract(scanned)
        with pytest.raises(InvalidPlanError):
            PhysicalOp(
                op_type=PhysOpType.EXTRACT,
                children=(leaf,),
                logical=scanned,
                partition_count=1,
                partitioning=Partitioning.random(),
            )

    def test_non_leaf_needs_children(self, builder):
        scanned = builder.scan("users_2024_01_01")
        with pytest.raises(InvalidPlanError):
            PhysicalOp(
                op_type=PhysOpType.FILTER,
                children=(),
                logical=scanned,
                partition_count=1,
                partitioning=Partitioning.random(),
            )


class TestPhysicalSemantics:
    def test_enforcer_passes_through_payload(self, builder):
        scanned = builder.scan("events_2024_01_01")
        leaf = _extract(scanned)
        exchange = PhysicalOp(
            op_type=PhysOpType.EXCHANGE,
            children=(leaf,),
            logical=None,
            partition_count=8,
            partitioning=Partitioning.hash("user_id"),
            exchange_mode=ExchangeMode.HASH,
        )
        assert exchange.true_card == leaf.true_card
        assert exchange.row_bytes == leaf.row_bytes
        assert exchange.is_enforcer
        assert exchange.template_tag == "xchg:hash"

    def test_child_context(self, physical_join_plan):
        for op in physical_join_plan.walk():
            context = op.child_context()
            if not op.children:
                assert context == ("leaf",)
            else:
                assert len(context) == len(op.children)

    def test_input_card_sums_children(self, builder):
        scanned = builder.scan("events_2024_01_01")
        leaf = _extract(scanned)
        assert leaf.input_card == leaf.true_card  # leaves report their own

    def test_with_partition_count(self, builder):
        leaf = _extract(builder.scan("users_2024_01_01"))
        changed = leaf.with_partition_count(16)
        assert changed.partition_count == 16
        assert leaf.partition_count == 4  # original untouched

    def test_validate_planner_output(self, physical_join_plan):
        validate_physical_plan(physical_join_plan)  # should not raise

    def test_logical_op_count_excludes_enforcers(self, physical_join_plan):
        total = physical_join_plan.node_count
        logical = physical_join_plan.logical_op_count()
        assert logical < total  # enforcers exist in a join plan
        assert logical == sum(
            1 for op in physical_join_plan.walk() if op.logical is not None
        )


class TestStageGraph:
    def test_every_op_has_a_stage(self, physical_join_plan):
        graph = build_stage_graph(physical_join_plan)
        for op in physical_join_plan.walk():
            assert graph.stage_for(op) is not None

    def test_stage_partition_consistency(self, physical_join_plan):
        graph = build_stage_graph(physical_join_plan)
        for stage in graph.stages:
            counts = {op.partition_count for op in stage.operators}
            assert len(counts) == 1

    def test_stages_start_at_partitioning_ops(self, physical_join_plan):
        graph = build_stage_graph(physical_join_plan)
        for stage in graph.stages:
            assert stage.partitioning_operators, "every stage needs Extract/Exchange"

    def test_topological_order_producers_first(self, physical_join_plan):
        graph = build_stage_graph(physical_join_plan)
        seen: set[int] = set()
        for stage in graph.topological_order():
            assert stage.upstream <= seen
            seen.add(stage.index)

    def test_join_children_merge_into_one_stage(self, physical_join_plan):
        graph = build_stage_graph(physical_join_plan)
        joins = [
            op
            for op in physical_join_plan.walk()
            if op.op_type in (PhysOpType.HASH_JOIN, PhysOpType.MERGE_JOIN)
        ]
        assert joins
        for join in joins:
            stage = graph.stage_for(join)
            for child in join.children:
                assert graph.stage_for(child) is stage

    def test_simple_plan_stage_count(self, physical_simple_plan):
        graph = build_stage_graph(physical_simple_plan)
        exchanges = sum(
            1 for op in physical_simple_plan.walk() if op.op_type is PhysOpType.EXCHANGE
        )
        extracts = sum(
            1 for op in physical_simple_plan.walk() if op.op_type is PhysOpType.EXTRACT
        )
        assert len(graph.stages) == exchanges + extracts
