"""Tests for the plan builder and logical operator semantics."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidPlanError
from repro.plan.logical import LogicalOpType, normalize_input_name


class TestNormalizeInputName:
    def test_strips_dates(self):
        a = normalize_input_name("clicks_2020_02_27")
        b = normalize_input_name("clicks_2021_11_03")
        assert a == b

    def test_distinct_bases_stay_distinct(self):
        assert normalize_input_name("clicks_01") != normalize_input_name("views_01")

    def test_lowercases(self):
        assert normalize_input_name("Clicks") == normalize_input_name("clicks")


class TestScan:
    def test_cardinality_from_catalog(self, builder):
        scanned = builder.scan("events_2024_01_01")
        assert scanned.true_card == 10_000_000
        assert scanned.op_type is LogicalOpType.GET

    def test_normalized_inputs(self, builder):
        scanned = builder.scan("events_2024_01_01")
        assert scanned.normalized_inputs == {normalize_input_name("events_2024_01_01")}

    def test_unknown_table(self, builder):
        with pytest.raises(KeyError):
            builder.scan("missing")


class TestFilter:
    def test_cardinality(self, builder):
        plan = builder.filter(builder.scan("events_2024_01_01"), "value", 0.25)
        assert plan.true_card == pytest.approx(2_500_000)
        assert plan.sel_true == 0.25

    def test_rejects_bad_selectivity(self, builder):
        scanned = builder.scan("events_2024_01_01")
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(InvalidPlanError):
                builder.filter(scanned, "value", bad)

    def test_preserves_width(self, builder):
        scanned = builder.scan("events_2024_01_01")
        assert builder.filter(scanned, "value", 0.5).row_bytes == scanned.row_bytes


class TestJoin:
    def test_fanout_semantics(self, builder):
        left = builder.scan("events_2024_01_01")
        right = builder.scan("users_2024_01_01")
        joined = builder.join(left, right, keys=("user_id", "user_id"), fanout=0.5)
        assert joined.true_card == pytest.approx(0.5 * left.true_card)

    def test_explicit_output_card(self, builder):
        left = builder.scan("events_2024_01_01")
        right = builder.scan("users_2024_01_01")
        joined = builder.join(left, right, keys=("user_id", "user_id"), output_card=123.0)
        assert joined.true_card == 123.0

    def test_both_specs_rejected(self, builder):
        left = builder.scan("events_2024_01_01")
        right = builder.scan("users_2024_01_01")
        with pytest.raises(InvalidPlanError):
            builder.join(left, right, keys=("a", "b"), fanout=1.0, output_card=5.0)

    def test_inputs_union(self, builder):
        left = builder.scan("events_2024_01_01")
        right = builder.scan("users_2024_01_01")
        joined = builder.join(left, right, keys=("user_id", "user_id"))
        assert len(joined.normalized_inputs) == 2


class TestAggregate:
    def test_group_count_caps_output(self, builder):
        scanned = builder.scan("events_2024_01_01")
        agg = builder.aggregate(scanned, keys=("user_id",), group_count=100)
        assert agg.true_card == 100

    def test_group_count_cannot_exceed_input(self, builder):
        scanned = builder.scan("users_2024_01_01")
        agg = builder.aggregate(scanned, keys=("user_id",), group_count=1e12)
        assert agg.true_card == scanned.true_card

    def test_default_group_count_sqrt(self, builder):
        scanned = builder.scan("events_2024_01_01")
        agg = builder.aggregate(scanned, keys=("user_id",))
        assert agg.true_card == pytest.approx(scanned.true_card**0.5)

    def test_narrows_rows(self, builder):
        scanned = builder.scan("events_2024_01_01")
        agg = builder.aggregate(scanned, keys=("user_id",), group_count=10)
        assert agg.row_bytes <= scanned.row_bytes


class TestOtherOperators:
    def test_topk_caps(self, builder):
        scanned = builder.scan("events_2024_01_01")
        top = builder.topk(scanned, keys=("value",), k=10)
        assert top.true_card == 10

    def test_topk_k_validation(self, builder):
        with pytest.raises(InvalidPlanError):
            builder.topk(builder.scan("users_2024_01_01"), keys=("a",), k=0)

    def test_sort_requires_keys(self, builder):
        with pytest.raises(InvalidPlanError):
            builder.sort(builder.scan("users_2024_01_01"), keys=())

    def test_union_sums(self, builder):
        a = builder.scan("events_2024_01_01")
        b = builder.scan("events_2024_01_01")
        union = builder.union(a, b)
        assert union.true_card == a.true_card * 2

    def test_union_needs_two(self, builder):
        with pytest.raises(InvalidPlanError):
            builder.union(builder.scan("users_2024_01_01"))

    def test_process_scales_both_axes(self, builder):
        scanned = builder.scan("events_2024_01_01")
        processed = builder.process(scanned, "udf_x", card_factor=2.0, width_factor=0.5)
        assert processed.true_card == 2 * scanned.true_card
        assert processed.row_bytes == pytest.approx(0.5 * scanned.row_bytes)


class TestTraversal:
    def test_walk_children_before_parents(self, simple_plan):
        nodes = list(simple_plan.walk())
        assert nodes[-1] is simple_plan
        assert nodes[0].op_type is LogicalOpType.GET

    def test_node_count_and_depth(self, simple_plan):
        assert simple_plan.node_count == 4
        assert simple_plan.depth == 4

    def test_base_card_sums_leaves(self, join_plan):
        assert join_plan.base_card == pytest.approx(10_000_000 + 100_000)

    def test_op_type_frequencies(self, join_plan):
        freq = join_plan.op_type_frequencies()
        assert freq["Get"] == 2
        assert freq["Filter"] == 2
        assert freq["Join"] == 1

    def test_describe_contains_cards(self, simple_plan):
        text = simple_plan.describe()
        assert "Output" in text and "Get" in text
